"""Service observability: counters and a latency histogram.

Everything here is cheap (one lock, integer bumps) because it sits on
the per-request hot path.  The ``stats`` wire request and the shutdown
log both render :meth:`ServiceMetrics.snapshot`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..runtime import Outcome

#: Default histogram bucket upper bounds, in seconds (the last bucket is
#: unbounded).  Chosen to straddle the paper's millisecond-scale queries
#: and pathological multi-second stragglers.
DEFAULT_BUCKETS = (
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds), thread-safe."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: List[float] = sorted(buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Account one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += seconds
            if seconds > self.max:
                self.max = seconds

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bound of the covering bucket)."""
        with self._lock:
            if self.total == 0:
                return 0.0
            target = q * self.total
            seen = 0
            for i, count in enumerate(self.counts):
                seen += count
                if seen >= target:
                    return (self.bounds[i] if i < len(self.bounds)
                            else self.max)
            return self.max

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view: bucket counts plus summary statistics."""
        with self._lock:
            buckets = {
                (f"<={bound:g}s" if i < len(self.bounds) else
                 f">{self.bounds[-1]:g}s"): count
                for i, (bound, count) in enumerate(
                    zip(list(self.bounds) + [float("inf")], self.counts))
                if count
            }
            mean = self.sum / self.total if self.total else 0.0
            total, maximum = self.total, self.max
        return {
            "count": total,
            "mean": mean,
            "max": maximum,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Admission, cache and outcome counters plus the latency histogram."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.executed = 0
        self.cancelled_requests = 0
        self.result_cache_hits = 0
        self.result_cache_misses = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.outcomes: Dict[str, int] = {status.value: 0 for status in Outcome}
        self.latency = LatencyHistogram()

    def count(self, name: str, n: int = 1) -> None:
        """Bump one of the integer counters by name."""
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def record_outcome(self, status: Outcome,
                       latency: Optional[float] = None) -> None:
        """Account one finished request: outcome plus optional latency."""
        with self._lock:
            self.outcomes[status.value] = self.outcomes.get(status.value, 0) + 1
        if latency is not None:
            self.latency.record(latency)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of every counter (the ``stats`` response)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "executed": self.executed,
                "cancelled_requests": self.cancelled_requests,
                "result_cache": {
                    "hits": self.result_cache_hits,
                    "misses": self.result_cache_misses,
                },
                "plan_cache": {
                    "hits": self.plan_cache_hits,
                    "misses": self.plan_cache_misses,
                },
                "outcomes": dict(self.outcomes),
                "latency": self.latency.snapshot(),
            }

    def summary(self) -> str:
        """One shutdown-log line."""
        snap = self.snapshot()
        latency = snap["latency"]
        outcomes = " ".join(
            f"{k}={v}" for k, v in snap["outcomes"].items() if v
        )
        return (
            f"served {snap['submitted']} request(s): "
            f"admitted={snap['admitted']} rejected={snap['rejected']} "
            f"cache_hits={snap['result_cache']['hits']} "
            f"plan_hits={snap['plan_cache']['hits']} "
            f"[{outcomes or 'no outcomes'}] "
            f"p50={latency['p50'] * 1000:.1f}ms "
            f"p95={latency['p95'] * 1000:.1f}ms"
        )
