"""Service observability: registry-backed counters and latency histogram.

The instruments now live in a :class:`repro.obs.metrics.MetricsRegistry`
(one per :class:`~repro.service.service.QueryService`), so the same
numbers that feed the ``stats`` wire response are scrapeable as
Prometheus text via ``repro-gql stats --format prometheus`` or the
``serve --metrics-port`` endpoint.  The public surface of
:class:`ServiceMetrics` is unchanged: ``count()``, ``record_outcome()``,
``snapshot()``, ``summary()``, and plain-integer attribute reads
(``metrics.result_cache_hits`` …) all keep working.

``LatencyHistogram`` and ``DEFAULT_BUCKETS`` are back-compat aliases of
:class:`repro.obs.metrics.Histogram` and its default bucket bounds.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.metrics import (
    DEFAULT_LATENCY_BUCKETS as DEFAULT_BUCKETS,
    Histogram as LatencyHistogram,
    MetricsRegistry,
)
from ..runtime import Outcome

__all__ = [
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "MetricsRegistry",
    "ServiceMetrics",
]

#: Integer counters the service bumps by name via ``count()``; each is
#: exported as ``repro_service_<name>_total``.
_COUNTER_NAMES = (
    "submitted",
    "admitted",
    "rejected",
    "invalid_queries",
    "executed",
    "cancelled_requests",
    "result_cache_hits",
    "result_cache_misses",
    "plan_cache_hits",
    "plan_cache_misses",
    "watchdog_recycles",
    "watchdog_abandoned",
    "duplicate_requests",
)

_COUNTER_HELP = {
    "submitted": "Requests received by the service.",
    "admitted": "Requests that passed admission control.",
    "rejected": "Requests turned away by admission control.",
    "invalid_queries": "Requests rejected because static analysis found errors.",
    "executed": "Requests that ran a matcher (cache misses).",
    "cancelled_requests": "Requests cancelled by an explicit cancel call.",
    "result_cache_hits": "Result-cache hits.",
    "result_cache_misses": "Result-cache misses.",
    "plan_cache_hits": "Plan-cache hits (replayed search orders).",
    "plan_cache_misses": "Plan-cache misses.",
    "watchdog_recycles": "Stuck workers the pool watchdog recycled.",
    "watchdog_abandoned": "Queued requests the watchdog abandoned as "
                          "TIMED_OUT without recycling the pool (no "
                          "worker had started them).",
    "duplicate_requests": "Retried requests answered from the "
                          "duplicate-request table.",
}


class ServiceMetrics:
    """Admission, cache and outcome counters plus the latency histogram.

    Everything on the request hot path is one counter bump or one
    histogram observe.  Pass a shared *registry* to co-locate the
    service's metrics with other subsystems' on one scrape endpoint; by
    default each instance gets its own registry (test isolation).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"repro_service_{name}_total", _COUNTER_HELP[name])
            for name in _COUNTER_NAMES
        }
        self._outcomes = {
            status.value: self.registry.counter(
                "repro_service_outcomes_total",
                "Finished requests by outcome status.",
                labels={"status": status.value})
            for status in Outcome
        }
        self.latency = self.registry.histogram(
            "repro_service_request_seconds",
            "End-to-end request latency in seconds.")
        #: shed requests by reason ("deadline" | "breaker"), lazily
        #: instantiated so only observed reasons appear in the scrape
        self._shed: Dict[str, object] = {}
        #: per-client retried-arrival counters (attempt > 1 on the wire)
        self._client_retries: Dict[str, object] = {}

    def __getattr__(self, name: str) -> int:
        # plain-attribute reads (metrics.result_cache_hits == int) keep
        # the pre-registry API working for callers and tests
        counters = self.__dict__.get("_counters")
        if counters and name in counters:
            return counters[name].value
        raise AttributeError(name)

    @property
    def outcomes(self) -> Dict[str, int]:
        """Finished-request counts by outcome status."""
        return {status: counter.value
                for status, counter in self._outcomes.items()}

    def count(self, name: str, n: int = 1) -> None:
        """Bump one of the named counters."""
        self._counters[name].inc(n)

    def record_shed(self, reason: str) -> None:
        """Account one shed request under its reason label."""
        counter = self._shed.get(reason)
        if counter is None:
            counter = self.registry.counter(
                "repro_service_shed_total",
                "Requests shed before admission, by reason.",
                labels={"reason": reason})
            self._shed[reason] = counter
        counter.inc()

    @property
    def shed(self) -> int:
        """Total shed requests across every reason."""
        return sum(counter.value for counter in self._shed.values())

    def shed_snapshot(self) -> Dict[str, int]:
        """Shed counts by reason plus the total."""
        by_reason = {reason: counter.value
                     for reason, counter in self._shed.items()}
        by_reason["total"] = sum(by_reason.values())
        return by_reason

    def note_client_retry(self, client: str) -> None:
        """Account one retried arrival (wire ``attempt`` > 1)."""
        counter = self._client_retries.get(client)
        if counter is None:
            counter = self.registry.counter(
                "repro_service_client_retries_total",
                "Retried request arrivals by client.",
                labels={"client": client})
            self._client_retries[client] = counter
        counter.inc()

    @property
    def client_retries(self) -> Dict[str, int]:
        """Retried-arrival counts per client."""
        return {client: counter.value
                for client, counter in self._client_retries.items()}

    def record_outcome(self, status: Outcome,
                       latency: Optional[float] = None) -> None:
        """Account one finished request: outcome plus optional latency."""
        counter = self._outcomes.get(status.value)
        if counter is None:
            counter = self.registry.counter(
                "repro_service_outcomes_total",
                "Finished requests by outcome status.",
                labels={"status": status.value})
            self._outcomes[status.value] = counter
        counter.inc()
        if latency is not None:
            self.latency.observe(latency)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of every counter (the ``stats`` response)."""
        return {
            "submitted": self._counters["submitted"].value,
            "admitted": self._counters["admitted"].value,
            "rejected": self._counters["rejected"].value,
            "invalid_queries": self._counters["invalid_queries"].value,
            "executed": self._counters["executed"].value,
            "cancelled_requests": self._counters["cancelled_requests"].value,
            "result_cache": {
                "hits": self._counters["result_cache_hits"].value,
                "misses": self._counters["result_cache_misses"].value,
            },
            "plan_cache": {
                "hits": self._counters["plan_cache_hits"].value,
                "misses": self._counters["plan_cache_misses"].value,
            },
            "shed": self.shed_snapshot(),
            "watchdog_recycles": self._counters["watchdog_recycles"].value,
            "watchdog_abandoned": self._counters["watchdog_abandoned"].value,
            "duplicate_requests": self._counters["duplicate_requests"].value,
            "client_retries": self.client_retries,
            "outcomes": self.outcomes,
            "latency": self.latency.snapshot(),
        }

    def summary(self) -> str:
        """One shutdown-log line."""
        snap = self.snapshot()
        latency = snap["latency"]
        outcomes = " ".join(
            f"{k}={v}" for k, v in snap["outcomes"].items() if v
        )
        return (
            f"served {snap['submitted']} request(s): "
            f"admitted={snap['admitted']} rejected={snap['rejected']} "
            f"cache_hits={snap['result_cache']['hits']} "
            f"plan_hits={snap['plan_cache']['hits']} "
            f"[{outcomes or 'no outcomes'}] "
            f"p50={latency['p50'] * 1000:.1f}ms "
            f"p95={latency['p95'] * 1000:.1f}ms"
        )
