"""The :class:`QueryService` facade: concurrent queries over registered graphs.

One service wraps one :class:`~repro.storage.database.GraphDatabase` and
adds everything the library-level matcher lacks for serving traffic:

* a bounded worker pool (threads by default, processes opt-in),
* admission control (global + per-client bounds, structured rejection),
* a prepared-query/plan cache and a version-invalidated result cache,
* per-request :class:`~repro.runtime.ExecutionContext` governance with
  cancellation by request id,
* metrics for every decision the service takes.

The synchronous entry point is :meth:`QueryService.execute`; concurrent
callers use :meth:`QueryService.submit`, which never blocks — it returns
a future that resolves to a :class:`QueryResponse` (possibly an
already-resolved ``REJECTED`` one).
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..core.pattern import GraphPattern, GroundPattern
from ..lang.compiler import compile_pattern_text
from ..matching.planner import baseline_options, optimized_options
from ..obs.metrics import MetricsRegistry, render_prometheus
from ..obs.slowlog import SlowQueryEntry, SlowQueryLog
from ..obs.trace import span as trace_span, tracer
from ..runtime import (
    CancellationToken,
    Outcome,
    QueryOutcome,
    rejected_outcome,
    shed_outcome,
)
from ..storage.database import GraphDatabase
from ..storage.serializer import collection_to_text
from .admission import (
    REASON_DRAINING,
    REASON_DUPLICATE_ID,
    REASON_INVALID_QUERY,
    AdmissionController,
)
from .cache import CachedPlan, LRUCache, PlanCache, ResultCache, make_key
from .config import ServiceConfig
from .metrics import ServiceMetrics
from .pool import pool_execute, pool_init
from .resilience import BreakerRegistry, QueueWaitEstimator

logger = logging.getLogger(__name__)

_request_ids = itertools.count(1)


def _next_request_id() -> str:
    return f"q{next(_request_ids)}"


PatternLike = Union[str, GraphPattern, GroundPattern]


@dataclass
class QueryRequest:
    """One query submission.

    ``query`` is GraphQL pattern text or an already compiled pattern;
    only text queries are cacheable (a compiled object has no stable
    cache identity).  The governance fields may tighten, never exceed,
    the service defaults.
    """

    query: PatternLike
    document: str = "data"
    client: str = "anon"
    request_id: str = field(default_factory=_next_request_id)
    limit: Optional[int] = None
    timeout: Optional[float] = None
    max_steps: Optional[int] = None
    max_memory: Optional[int] = None
    baseline: bool = False
    use_cache: bool = True
    #: remote trace context ``(trace_id, parent_span_id)`` received over
    #: the wire; the request's root span joins that distributed trace
    trace_parent: Optional[Tuple[int, int]] = None


@dataclass
class QueryResponse:
    """One query's answer: rows plus the structured outcome.

    ``results`` rows are JSON-ready dicts
    (``{"graph": name, "nodes": {...}, "edges": {...}}``), ``cache`` is
    ``"hit"`` / ``"miss"`` / ``"bypass"``, and ``error`` carries a
    compile/internal failure message (rows empty, outcome still present).
    """

    request_id: str
    client: str = "anon"
    results: List[Dict[str, Any]] = field(default_factory=list)
    outcome: QueryOutcome = field(default_factory=QueryOutcome)
    cache: str = "bypass"
    elapsed: float = 0.0
    error: Optional[str] = None
    #: planner fallback notes (one per degradation the matcher took)
    degradation: List[str] = field(default_factory=list)
    #: seconds after which a SHED request is worth retrying (the
    #: observed p95 queue wait, or the breaker's remaining cooldown)
    retry_after: Optional[float] = None

    @property
    def rejected(self) -> bool:
        """Whether admission control turned this request away."""
        return self.outcome.status is Outcome.REJECTED

    @property
    def shed(self) -> bool:
        """Whether load shedding / an open breaker turned this away."""
        return self.outcome.status is Outcome.SHED

    def to_dict(self) -> Dict[str, Any]:
        """The wire form of this response (protocol payload)."""
        payload = {
            "request_id": self.request_id,
            "client": self.client,
            "results": self.results,
            "outcome": self.outcome.to_dict(),
            "cache": self.cache,
            "elapsed": self.elapsed,
            "error": self.error,
            "degradation": list(self.degradation),
        }
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        return payload


@dataclass
class _Inflight:
    """One admitted request's service-side state.

    ``hard_deadline`` (monotonic seconds) is the watchdog's wall: a
    request unfinished past it is considered stuck and abandoned.  It
    is anchored at submit but *re-anchored* when a worker actually
    starts the request, so time spent merely queued behind a backlog
    never counts as "stuck worker".  ``claimed`` flips when a worker
    thread actually starts the request, which is what lets a pool
    recycle resubmit still-queued work without double-running it.
    """

    request: QueryRequest
    token: CancellationToken
    future: "Future[QueryResponse]"
    submitted_at: float
    root: Any = None
    #: watchdog wall-clock budget (seconds) once a worker starts the
    #: request; None when the request has no effective timeout
    watchdog_budget: Optional[float] = None
    hard_deadline: Optional[float] = None
    claimed: bool = False
    #: process-pool inner future (None on the thread path); lets the
    #: watchdog tell a dispatched-but-unstarted request from a running one
    inner: Optional[Future] = None


class QueryService:
    """Concurrent query execution with admission control and caching."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        database: Optional[GraphDatabase] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.database = database or GraphDatabase()
        self.registry = MetricsRegistry()
        self.metrics = ServiceMetrics(self.registry)
        self.slow_log = SlowQueryLog(self.config.slow_log_size,
                                     self.config.slow_log_threshold)
        self.admission = AdmissionController(self.config)
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.result_cache = ResultCache(self.config.result_cache_size)
        #: query text -> tuple of error-severity diagnostic dicts
        #: (empty tuple == valid); consulted at admission, microseconds
        self._validation_cache = LRUCache(self.config.validation_cache_size)
        self.breakers = BreakerRegistry(
            threshold=max(1, self.config.breaker_threshold),
            cooldown=self.config.breaker_cooldown)
        self.queue_wait = QueueWaitEstimator(
            window=self.config.shed_window,
            min_samples=self.config.shed_min_samples)
        self._register_gauges()
        self._executor: Optional[Union[ThreadPoolExecutor,
                                       ProcessPoolExecutor]] = None
        self._in_flight: Dict[str, _Inflight] = {}
        #: per-document versions at process-pool start; process results
        #: are only cacheable while the live documents still match them
        self._pool_versions: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        #: test seam: called on the worker thread right before a query
        #: executes (the recycling tests inject an uncooperative sleep)
        self.execute_hook: Optional[Callable[[QueryRequest], None]] = None
        #: what opening the durable store found/repaired (None without one)
        self.recovery = None
        if self.config.store_path:
            self.recovery = self.database.attach_durable(
                self.config.store_path, fsync=self.config.fsync)
            if not self.recovery.clean:
                logger.warning("store recovery ran: %s",
                               self.recovery.to_dict())

    def _register_gauges(self) -> None:
        """Live state exposed as callback gauges (read at scrape time)."""
        reg = self.registry
        reg.gauge("repro_service_in_flight",
                  "Requests admitted and not yet finished.",
                  fn=lambda: self.admission.in_flight)
        reg.gauge("repro_service_draining",
                  "1 while the service refuses new admissions.",
                  fn=lambda: int(self.admission.draining))
        reg.gauge("repro_service_documents",
                  "Registered document collections.",
                  fn=lambda: len(self.database.names()))
        reg.gauge("repro_service_result_cache_size",
                  "Entries in the result cache.",
                  fn=lambda: self.result_cache.stats()["size"])
        reg.gauge("repro_service_plan_cache_size",
                  "Entries in the plan cache.",
                  fn=lambda: self.plan_cache.stats()["size"])

        def _wal_bytes() -> int:
            store = self.database.durable_store
            if store is not None and store.wal:
                return store.wal.size
            return 0

        reg.gauge("repro_store_wal_bytes",
                  "Bytes in the write-ahead log (0 without a store).",
                  fn=_wal_bytes)
        reg.gauge("repro_service_slow_log_entries",
                  "Entries currently held by the slow-query log.",
                  fn=lambda: len(self.slow_log))
        from .resilience import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN

        for state in (STATE_CLOSED, STATE_OPEN, STATE_HALF_OPEN):
            reg.gauge("repro_service_breaker_clients",
                      "Client circuit breakers by state.",
                      labels={"state": state},
                      fn=lambda s=state: self.breakers.state_counts()
                      .get(s, 0))
        reg.gauge("repro_service_queue_wait_p95_seconds",
                  "Observed p95 admission-to-execution wait "
                  "(0 while the estimator is cold).",
                  fn=lambda: self.queue_wait.p95() or 0.0)

    # -- graph registration ---------------------------------------------------

    def register(self, name: str,
                 collection: Union[GraphCollection, Graph]) -> None:
        """Register a graph/collection; restarts a live process pool so
        the workers see the new snapshot.

        With a durable store attached, the document is WAL-committed
        *before* it becomes visible to queries: a registration that
        returned survives a crash."""
        if self.database.durable_store is not None:
            self.database.register_durable(name, collection)
        else:
            self.database.register(name, collection)
        if self.config.use_processes:
            self._restart_pool()

    def load(self, name: str, path, directed: bool = False) -> None:
        """Load and register a collection from a GraphQL file."""
        if self.database.durable_store is not None:
            from ..storage.serializer import load_collection

            self.database.register_durable(
                name, load_collection(path, directed=directed))
        else:
            self.database.load(name, path, directed=directed)
        if self.config.use_processes:
            self._restart_pool()

    def document_version(self, document: str) -> int:
        """The cache-invalidation counter of one document.

        The sum of the member graphs' mutation counters: bumped by any
        node/edge change, so every cache key derived from it goes stale
        the moment the data does.
        """
        return sum(graph.version for graph in self.database.doc(document))

    # -- the executor ---------------------------------------------------------

    def _docs_payload(self) -> Dict[str, Tuple[str, bool]]:
        payload = {}
        for name in self.database.names():
            collection = self.database.doc(name)
            directed = any(g.directed for g in collection)
            payload[name] = (collection_to_text(collection), directed)
        return payload

    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                if self.config.use_processes:
                    self._pool_versions = {
                        name: self.document_version(name)
                        for name in self.database.names()
                    }
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.config.workers,
                        initializer=pool_init,
                        initargs=(self._docs_payload(),),
                    )
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.config.workers,
                        thread_name_prefix="repro-query",
                    )
            return self._executor

    def _restart_pool(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            self._pool_versions = {}
        if executor is not None:
            executor.shutdown(wait=True)

    # -- submission -----------------------------------------------------------

    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Admit and schedule one request; never blocks.

        The returned future resolves to a :class:`QueryResponse` in every
        case — rejection and internal errors included — so callers can
        account ``admitted + rejected == submitted`` without exception
        handling.
        """
        self.metrics.count("submitted")
        root = tracer().start(
            "service.request", remote=request.trace_parent,
            request_id=request.request_id,
            client=request.client, document=request.document)
        with tracer().activate(root):
            # static analysis first: an invalid query is rejected before
            # admission, breakers or the pool ever see it — no worker,
            # no quota, no probe slot is spent on a request that can
            # only fail
            errors = self._validate(request)
            if errors:
                self.metrics.count("invalid_queries")
                return self._reject(
                    request, REASON_INVALID_QUERY, root=root,
                    detail={"diagnostics": list(errors)}, probe=False)
            with trace_span("service.admission") as sp:
                shed_reason, retry_after = self._shed_check(request)
                if shed_reason is not None:
                    sp.annotate(shed=shed_reason)
                else:
                    reason = self.admission.try_admit(request.client)
                    if reason is not None:
                        sp.annotate(rejected=reason)
            if shed_reason is not None:
                return self._shed(request, shed_reason, retry_after,
                                  root=root)
            if reason is not None:
                return self._reject(request, reason, root=root)
            self.metrics.count("admitted")
            submitted_at = time.perf_counter()

            # serve result-cache hits synchronously: no worker, microseconds
            with trace_span("service.cache_probe") as probe:
                cached = self._cache_lookup(request)
                probe.annotate(hit=cached is not None)
            if cached is not None:
                rows, outcome = cached
                self.metrics.count("result_cache_hits")
                response = QueryResponse(
                    request_id=request.request_id, client=request.client,
                    results=rows, outcome=outcome, cache="hit",
                    elapsed=time.perf_counter() - submitted_at,
                )
                self._finish(request, response, submitted_at, outer=None,
                             root=root, tracked=False)
                done: "Future[QueryResponse]" = Future()
                done.set_result(response)
                return done

            token = CancellationToken()
            outer: "Future[QueryResponse]" = Future()
            budget = self._watchdog_budget_for(request)
            entry = _Inflight(
                request=request, token=token, future=outer,
                submitted_at=submitted_at, root=root,
                watchdog_budget=budget,
                hard_deadline=(None if budget is None
                               else time.monotonic() + budget),
            )
            with self._lock:
                # the id is the cancellation handle, so it must be unique
                # among in-flight requests — a second insert would orphan
                # the first request's token and make cancel() unreachable
                if request.request_id in self._in_flight:
                    self.admission.release(request.client)
                    self.metrics.count("admitted", -1)
                    duplicate = True
                else:
                    self._in_flight[request.request_id] = entry
                    duplicate = False
            if duplicate:
                return self._reject(request, REASON_DUPLICATE_ID, root=root)
            try:
                executor = self._ensure_executor()
                self._ensure_watchdog()
                if self.config.use_processes:
                    key = self._process_cache_key(request)
                    dispatch = tracer().start("service.dispatch",
                                              parent=root, mode="process")
                    inner = executor.submit(
                        pool_execute, request.document,
                        self._pattern_text(request),
                        self._options_kwargs(request),
                        self._governance_kwargs(request),
                    )
                    entry.inner = inner
                    inner.add_done_callback(
                        lambda f: self._finish_process(
                            request, f, submitted_at, outer, key,
                            root=root, dispatch=dispatch))
                else:
                    executor.submit(self._run_local, entry)
            except Exception as exc:  # pool shut down under us => shed load
                logger.warning("submit failed for %s: %s",
                               request.request_id, exc)
                self._release(request)
                self.metrics.count("admitted", -1)
                return self._reject(request, REASON_DRAINING, root=root)
        return outer

    def execute(self, query: PatternLike, **kwargs) -> QueryResponse:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(QueryRequest(query=query, **kwargs)).result()

    def _validate(self, request: QueryRequest) -> Tuple[Dict[str, Any], ...]:
        """Error-severity diagnostics for a textual query (cached).

        Compiled patterns pass through untouched (their text was already
        validated wherever it was compiled), as does everything when
        ``validate_queries`` is off.
        """
        if not self.config.validate_queries:
            return ()
        if not isinstance(request.query, str):
            return ()
        cached = self._validation_cache.get(request.query)
        if cached is not None:
            return cached
        from ..analysis import analyze_pattern_text, errors_only, to_wire

        errors = tuple(
            to_wire(errors_only(analyze_pattern_text(request.query))))
        self._validation_cache.put(request.query, errors)
        return errors

    def _reject(self, request: QueryRequest, reason: str,
                root=None, detail: Optional[Dict[str, Any]] = None,
                probe: bool = True) -> "Future[QueryResponse]":
        # most rejects happen after the breaker check admitted the
        # request, so a HALF_OPEN probe slot may be riding on it;
        # validation rejects (probe=False) precede the breaker check
        if probe:
            self._release_probe(request.client)
        self.metrics.count("rejected")
        self.metrics.record_outcome(Outcome.REJECTED)
        outcome = rejected_outcome(reason)
        if detail:
            outcome.detail.update(detail)
        response = QueryResponse(
            request_id=request.request_id, client=request.client,
            outcome=outcome, cache="bypass",
        )
        if root is not None:
            root.annotate(status=Outcome.REJECTED.value, reason=reason)
            root.finish()
        done: "Future[QueryResponse]" = Future()
        done.set_result(response)
        return done

    # -- resilience: shedding, breakers, the watchdog -------------------------

    def _shed_check(
            self, request: QueryRequest
    ) -> Tuple[Optional[str], Optional[float]]:
        """Whether to shed this request, plus a retry-after hint.

        Two reasons to shed: the client's circuit breaker is open, or
        the request's whole deadline is below the observed p95 queue
        wait — it would expire in the queue, so starting it only wastes
        a worker.
        """
        if self.config.breaker_threshold > 0:
            allowed, retry_after = self.breakers.allow(request.client)
            if not allowed:
                self.metrics.record_shed("breaker")
                return (f"circuit breaker open for client "
                        f"{request.client!r}", retry_after)
        if self.config.shed_enabled:
            effective = self.config.tighten(request.timeout,
                                            self.config.default_timeout)
            if effective is not None:
                p95 = self.queue_wait.p95()
                if p95 is not None and effective < p95:
                    self.metrics.record_shed("deadline")
                    # the breaker may have just spent its HALF_OPEN
                    # probe slot on this request: give it back
                    self._release_probe(request.client)
                    return (f"deadline {effective:g}s is below the "
                            f"observed p95 queue wait {p95:.3f}s",
                            round(p95, 3))
        return None, None

    def _release_probe(self, client: str) -> None:
        """Return a breaker probe slot taken by a request that was
        turned away before it could execute.

        Without this, a HALF_OPEN probe shed/rejected downstream would
        resolve to neither success nor failure and the slot would stay
        occupied until the lost-probe timeout."""
        if self.config.breaker_threshold > 0:
            self.breakers.release_probe(client)

    def _shed(self, request: QueryRequest, reason: str,
              retry_after: Optional[float],
              root=None) -> "Future[QueryResponse]":
        self.metrics.record_outcome(Outcome.SHED)
        response = QueryResponse(
            request_id=request.request_id, client=request.client,
            outcome=shed_outcome(reason), cache="bypass",
            retry_after=retry_after,
        )
        if root is not None:
            root.annotate(status=Outcome.SHED.value, reason=reason)
            root.finish()
        done: "Future[QueryResponse]" = Future()
        done.set_result(response)
        return done

    def _watchdog_budget_for(self, request: QueryRequest) -> Optional[float]:
        """The watchdog wall-clock budget of one request, or None.

        A worker that has not produced a result after
        ``watchdog_multiple`` times the request's *effective* timeout is
        wedged — the cooperative deadline inside the worker fired long
        ago and was ignored.  Requests with no effective timeout are
        never watched (there is no deadline to multiply).
        """
        if self.config.watchdog_multiple <= 0:
            return None
        effective = self.config.tighten(request.timeout,
                                        self.config.default_timeout)
        if effective is None:
            return None
        return self.config.watchdog_multiple * effective

    def _record_breaker(self, request: QueryRequest,
                        response: QueryResponse) -> None:
        """Feed one finished request to its client's circuit breaker."""
        if self.config.breaker_threshold <= 0:
            return
        status = response.outcome.status
        if response.error is not None or status is Outcome.TIMED_OUT:
            self.breakers.record(request.client, failed=True)
        elif status in (Outcome.COMPLETE, Outcome.TRUNCATED):
            self.breakers.record(request.client, failed=False)
        else:
            # CANCELLED / REJECTED / SHED are neutral: not the query's
            # fault — but if this request held the HALF_OPEN probe slot
            # it must give it back, or no probe ever resolves
            self.breakers.release_probe(request.client)

    def _ensure_watchdog(self) -> None:
        if self.config.watchdog_multiple <= 0:
            return
        with self._lock:
            if self._watchdog is None and not self._closed:
                self._watchdog = threading.Thread(
                    target=self._watchdog_loop,
                    name="repro-pool-watchdog", daemon=True)
                self._watchdog.start()

    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self.config.watchdog_interval):
            try:
                self._watchdog_scan()
            except Exception:  # the watchdog itself must never die
                logger.exception("pool watchdog scan failed")

    @staticmethod
    def _worker_started(entry: _Inflight) -> bool:
        """Whether a worker has actually begun executing *entry*.

        Thread path: the worker flips ``claimed`` when it picks the
        entry up.  Process path: the inner future leaves PENDING once
        the pool hands the work item to a worker process.
        """
        if entry.inner is not None:
            return entry.inner.running() or entry.inner.done()
        return entry.claimed

    def _watchdog_scan(self) -> None:
        """Abandon stuck requests; recycle only when a worker is wedged.

        A request past its hard deadline that no worker ever *started*
        is a queue-backlog casualty, not a stuck worker: it is answered
        TIMED_OUT and its queued work item cancelled, but the pool —
        whose workers are all making progress — is left alone.  Killing
        every worker over a backlog would fail all in-flight requests
        and start a service-wide reset loop exactly when the service is
        busiest.
        """
        now = time.monotonic()
        with self._lock:
            stuck = [entry for entry in self._in_flight.values()
                     if entry.hard_deadline is not None
                     and now > entry.hard_deadline]
        if not stuck:
            return
        wedged = 0
        for entry in stuck:
            started = self._worker_started(entry)
            if started:
                wedged += 1
            elif entry.inner is not None:
                entry.inner.cancel()  # still pending: never dispatch it
            self._abandon(entry, stuck_worker=started)
        if wedged:
            self._recycle_pool(
                f"{wedged} request(s) stuck past their hard deadline")
        else:
            logger.warning(
                "watchdog: abandoned %d queued request(s) past their hard "
                "deadline; pool left alone (no worker had started them)",
                len(stuck))

    def _abandon(self, entry: _Inflight, stuck_worker: bool = True) -> None:
        """Answer a stuck request TIMED_OUT and free its slot.

        The wedged worker may still complete eventually; its late
        ``_finish`` finds the entry gone and drops the result instead of
        double-releasing admission.  ``stuck_worker`` is False for a
        request no worker ever started (abandoned over a queue backlog,
        or a failed resubmit after a recycle).
        """
        request = entry.request
        with self._lock:
            if self._in_flight.get(request.request_id) is not entry:
                return  # finished (or already abandoned) in the race
            del self._in_flight[request.request_id]
        self.admission.release(request.client)
        if stuck_worker:
            reason = (f"watchdog: no result after "
                      f"{self.config.watchdog_multiple:g}x the effective "
                      f"timeout; worker recycled")
        else:
            reason = (f"watchdog: still queued after "
                      f"{self.config.watchdog_multiple:g}x the effective "
                      f"timeout; abandoned without running")
        entry.token.cancel(reason)
        self.metrics.count("watchdog_recycles" if stuck_worker
                           else "watchdog_abandoned")
        latency = time.perf_counter() - entry.submitted_at
        response = QueryResponse(
            request_id=request.request_id, client=request.client,
            outcome=QueryOutcome(status=Outcome.TIMED_OUT, reason=reason,
                                 elapsed=latency),
            cache="bypass", elapsed=latency,
        )
        self.metrics.record_outcome(Outcome.TIMED_OUT, latency=latency)
        self._record_breaker(request, response)
        if entry.root is not None:
            entry.root.annotate(status=Outcome.TIMED_OUT.value,
                                watchdog="recycled")
            entry.root.finish()
        self._record_slow(request, response, latency, entry.root)
        if not entry.future.done():
            entry.future.set_result(response)

    def _recycle_pool(self, reason: str) -> None:
        """Replace the worker pool without waiting for wedged workers.

        Thread pools: the old executor is shut down without waiting
        (stuck threads finish on their own time and their late results
        are dropped); work that was still *queued* is resubmitted on the
        fresh executor, so only the stuck requests pay.  Process pools:
        the worker processes are killed and the pool is rebuilt from a
        fresh snapshot — ``_pool_versions`` is recaptured at rebuild, so
        the snapshot-version cache invariants hold across the recycle.
        In-flight process requests fail with a structured error (their
        futures break with the pool); none of them can hang.
        """
        logger.warning("recycling the worker pool: %s", reason)
        with self._lock:
            executor, self._executor = self._executor, None
            self._pool_versions = {}
            queued = ([] if self.config.use_processes else
                      [entry for entry in self._in_flight.values()
                       if not entry.claimed])
        if executor is None:
            return
        if self.config.use_processes:
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                logger.exception("process pool shutdown after recycle")
            return
        executor.shutdown(wait=False, cancel_futures=True)
        if queued:
            fresh = self._ensure_executor()
            for entry in queued:
                try:
                    fresh.submit(self._run_local, entry)
                except Exception:
                    self._abandon(entry, stuck_worker=False)

    # -- execution ------------------------------------------------------------

    def _options_for(self, request: QueryRequest):
        limit = request.limit
        if self.config.default_max_results is not None:
            limit = (self.config.default_max_results if limit is None
                     else min(limit, self.config.default_max_results))
        build = baseline_options if request.baseline else optimized_options
        # serving path: skip the benchmark-only baseline-space measurement
        return build(limit=limit, compute_baseline=False)

    def _options_key(self, request: QueryRequest) -> Hashable:
        opts = self._options_for(request)
        # every knob that can change the rows a run produces must be part
        # of the key: the planner mode and answer cap, but also the
        # effective step/memory budgets — either can TRUNCATE a run, and
        # a budget-truncated partial answer must never be replayed to a
        # request with looser budgets
        return (
            "baseline" if request.baseline else "optimized",
            opts.limit,
            self.config.tighten(request.max_steps,
                                self.config.default_max_steps),
            self.config.tighten(request.max_memory,
                                self.config.default_max_memory),
        )

    def _options_kwargs(self, request: QueryRequest) -> Dict[str, Any]:
        opts = self._options_for(request)
        return {f: getattr(opts, f) for f in (
            "local", "refine", "optimize_order", "limit", "compute_baseline")}

    def _governance_kwargs(self, request: QueryRequest) -> Dict[str, Any]:
        context = self.config.derive_context(
            timeout=request.timeout, max_steps=request.max_steps,
            max_memory=request.max_memory,
        )
        return {
            "timeout": context.timeout,
            "max_steps": context.max_steps,
            "max_results": context.max_results,
            "max_memory": context.max_memory,
        }

    def _pattern_text(self, request: QueryRequest) -> str:
        if not isinstance(request.query, str):
            raise TypeError(
                "process-pool execution requires query text, not a "
                "compiled pattern (it must cross the process boundary)"
            )
        return request.query

    def _cache_key(self, request: QueryRequest):
        """The cache key of a request, or None when uncacheable."""
        if not request.use_cache or not isinstance(request.query, str):
            return None
        try:
            version = self.document_version(request.document)
        except KeyError:
            return None
        return make_key(request.document, request.query,
                        self._options_key(request), version)

    def _process_cache_key(self, request: QueryRequest):
        """The cache key for a process-pool run, or None.

        Captured *before* dispatch — like :meth:`_run_local` — so a
        mutation racing with the query can never publish its rows under
        the post-mutation version.  Additionally the pool workers match
        the snapshot taken at pool start, so the result is only
        cacheable while the live document still has that snapshot's
        version; otherwise the rows are stale and must not be cached at
        all.
        """
        key = self._cache_key(request)
        if key is None:
            return None
        if self._pool_versions.get(request.document) != key[3]:
            return None
        return key

    def _cache_lookup(self, request: QueryRequest):
        key = self._cache_key(request)
        if key is None:
            return None
        return self.result_cache.get(key)

    def _compile(self, request: QueryRequest):
        """The compiled pattern, via the plan cache for text queries."""
        if not isinstance(request.query, str):
            return request.query, None
        key = self._cache_key(request)
        if key is None:
            return compile_pattern_text(request.query), None
        plan = self.plan_cache.get(key)
        if plan is not None:
            self.metrics.count("plan_cache_hits")
            return plan.pattern, plan
        self.metrics.count("plan_cache_misses")
        plan = CachedPlan(pattern=compile_pattern_text(request.query))
        self.plan_cache.put(key, plan)
        return plan.pattern, plan

    def _run_local(self, entry: _Inflight) -> None:
        """Worker-thread body: compile, match, serialize, cache.

        ``entry.root`` is the request's trace span started in
        :meth:`submit`; activating it here re-parents this worker
        thread's spans under the submitting request, so concurrent
        requests never interleave.  The claim check makes execution
        exactly-once across pool recycles: a queued work item that was
        both cancelled-and-resubmitted runs on whichever executor claims
        it first, and an entry the watchdog abandoned never starts.
        """
        request, token = entry.request, entry.token
        submitted_at, outer, root = (entry.submitted_at, entry.future,
                                     entry.root)
        with self._lock:
            if (self._in_flight.get(request.request_id) is not entry
                    or entry.claimed):
                return
            entry.claimed = True
            # re-anchor the watchdog wall now that a worker is actually
            # running this request: queue wait is the pool's fault, not
            # the worker's, and must not read as "stuck"
            if entry.watchdog_budget is not None:
                entry.hard_deadline = (time.monotonic()
                                       + entry.watchdog_budget)
        # the queue wait just ended: this sample is what deadline-aware
        # shedding compares incoming deadlines against
        self.queue_wait.observe(time.perf_counter() - submitted_at)
        if self.execute_hook is not None:
            self.execute_hook(request)
        with tracer().activate(root):
            with trace_span("service.execute"):
                context = self.config.derive_context(
                    timeout=request.timeout, max_steps=request.max_steps,
                    max_memory=request.max_memory, token=token,
                )
                # key the caches on the document version *before*
                # execution, so a mutation racing with this query can
                # never publish its results under the post-mutation
                # version
                key = self._cache_key(request)
                rows: List[Dict[str, Any]] = []
                notes: List[str] = []
                error: Optional[str] = None
                try:
                    pattern, plan = self._compile(request)
                    options = self._options_for(request)
                    if plan is not None and len(plan.orders) == 1:
                        options = replace(
                            options,
                            plan_order=next(iter(plan.orders.values())))
                    reports = self.database.match(request.document, pattern,
                                                  options, context=context)
                    for name, report in reports.items():
                        for mapping in report.mappings:
                            rows.append({
                                "graph": name,
                                "nodes": dict(mapping.nodes),
                                "edges": dict(mapping.edges),
                            })
                        for note in report.degradation:
                            notes.append(f"{name}: {note}")
                    if (plan is not None and not plan.orders
                            and isinstance(pattern, GroundPattern)
                            and len(reports) == 1):
                        name, report = next(iter(reports.items()))
                        if report.order:
                            plan.orders[name] = list(report.order)
                    self.metrics.count("executed")
                except Exception as exc:
                    logger.exception("query %s failed", request.request_id)
                    error = str(exc)
                outcome = context.outcome()
                if (error is None and key is not None
                        and self.result_cache.admit(key, rows, outcome)):
                    self.metrics.count("result_cache_misses")
                response = QueryResponse(
                    request_id=request.request_id, client=request.client,
                    results=rows, outcome=outcome,
                    cache="miss" if key is not None else "bypass",
                    elapsed=time.perf_counter() - submitted_at, error=error,
                    degradation=notes,
                )
            self._finish(request, response, submitted_at, outer, root=root)

    def _finish_process(self, request: QueryRequest, inner: Future,
                        submitted_at: float,
                        outer: "Future[QueryResponse]", key,
                        root=None, dispatch=None) -> None:
        """Done-callback converting a pool result into a QueryResponse.

        ``key`` is the :meth:`_process_cache_key` captured at submit
        time — recomputing it here would pick up the *post*-execution
        document version and could publish a stale snapshot's rows as a
        fresh entry.  ``dispatch`` is the span covering the worker
        process round-trip (the matcher's own spans stay in the worker).
        """
        rows: List[Dict[str, Any]] = []
        notes: List[str] = []
        error: Optional[str] = None
        outcome = QueryOutcome()
        try:
            payload = inner.result()
            if len(payload) == 3:
                rows, outcome_dict, notes = payload
            else:  # an old-style worker (rolling restart)
                rows, outcome_dict = payload
            outcome = QueryOutcome.from_dict(outcome_dict)
            self.metrics.count("executed")
            # the worker reports its own execution time; the remainder
            # of the round-trip is dispatch + queue wait, which is what
            # deadline-aware shedding needs to see in process mode too
            self.queue_wait.observe(max(
                0.0, (time.perf_counter() - submitted_at) - outcome.elapsed))
        except Exception as exc:
            error = str(exc)
        if dispatch is not None:
            if error is not None:
                dispatch.annotate(error=error)
            dispatch.finish()
        if (error is None and key is not None
                and self.result_cache.admit(key, rows, outcome)):
            self.metrics.count("result_cache_misses")
        response = QueryResponse(
            request_id=request.request_id, client=request.client,
            results=rows, outcome=outcome,
            cache="miss" if key is not None else "bypass",
            elapsed=time.perf_counter() - submitted_at, error=error,
            degradation=list(notes),
        )
        self._finish(request, response, submitted_at, outer, root=root)

    def _release(self, request: QueryRequest, tracked: bool = True) -> bool:
        """Free one request's admission slot (idempotent).

        Returns True when this call owned the completion.  ``tracked``
        requests release only if their in-flight entry was still
        present — the watchdog may have abandoned them (and released
        the slot) already.  Untracked requests (cache hits, which never
        enter the in-flight map) always release.
        """
        with self._lock:
            popped = self._in_flight.pop(request.request_id, None) is not None
        if popped or not tracked:
            self.admission.release(request.client)
            return True
        return False

    def _finish(self, request: QueryRequest, response: QueryResponse,
                submitted_at: float,
                outer: Optional["Future[QueryResponse]"],
                root=None, tracked: bool = True) -> None:
        if not self._release(request, tracked=tracked):
            # the watchdog abandoned this request: the client was
            # answered and accounted long ago — drop the late result
            return
        latency = time.perf_counter() - submitted_at
        self.metrics.record_outcome(response.outcome.status, latency=latency)
        self._record_breaker(request, response)
        if root is not None:
            root.annotate(status=response.outcome.status.value,
                          cache=response.cache)
            root.finish()
        self._record_slow(request, response, latency, root)
        if outer is not None and not outer.done():
            outer.set_result(response)

    def _record_slow(self, request: QueryRequest, response: QueryResponse,
                     latency: float, root=None) -> None:
        """Offer one finished request to the slow-query log."""
        if self.slow_log.capacity == 0:
            return
        spans = (root.top_spans() if root is not None and root.enabled
                 else {})
        self.slow_log.record(SlowQueryEntry(
            request_id=request.request_id,
            client=request.client,
            document=request.document,
            query=(request.query if isinstance(request.query, str)
                   else repr(request.query)),
            elapsed=latency,
            status=response.outcome.status.value,
            reason=response.outcome.reason or None,
            cache=response.cache,
            degradation=list(response.degradation),
            spans=spans,
        ))

    # -- lifecycle ------------------------------------------------------------

    def cancel(self, request_id: str,
               reason: str = "cancelled by client") -> bool:
        """Cancel one in-flight request by id (cooperative).

        Returns False when the id is unknown — already finished, never
        admitted, or mistyped.  With a process pool the flag cannot reach
        the worker, so the query runs to completion but the response is
        still produced normally.
        """
        with self._lock:
            entry = self._in_flight.get(request_id)
        if entry is None:
            return False
        entry.token.cancel(reason)
        self.metrics.count("cancelled_requests")
        return True

    def cancel_all(self, reason: str = "service shutdown") -> int:
        """Cancel every in-flight request; returns how many were signalled."""
        with self._lock:
            entries = list(self._in_flight.values())
        for entry in entries:
            entry.token.cancel(reason)
        return len(entries)

    def metrics_text(self) -> str:
        """The Prometheus text exposition of this service's registry."""
        return render_prometheus(self.registry)

    def explain(
        self,
        query_text: str,
        document: str = "data",
        analyze: bool = False,
        baseline: bool = False,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """EXPLAIN [ANALYZE] one query against a registered document.

        Bypasses admission/caching — this is an operator tool, not the
        serving path.  ``analyze=True`` runs the query for real under a
        governance context derived from the service defaults.
        """
        from ..analysis import analyze_pattern_text, to_wire
        from ..analysis.schema import schema_for_document
        from ..obs.explain import explain_document  # avoids an import cycle

        request = QueryRequest(query=query_text, document=document,
                               baseline=baseline, limit=limit)
        options = self._options_for(request)
        context = (self.config.derive_context(timeout=timeout)
                   if analyze else None)
        explained = explain_document(
            self.database, document, compile_pattern_text(query_text),
            options, analyze=analyze, context=context)
        # the analyzer's findings ride along (schema-aware: the document
        # is registered, so the observed schema is available for free)
        explained["diagnostics"] = to_wire(analyze_pattern_text(
            query_text, schema_for_document(self.database, document)))
        return explained

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` response: metrics + cache + admission state."""
        snapshot = self.metrics.snapshot()
        snapshot["in_flight"] = self.admission.in_flight
        snapshot["draining"] = self.admission.draining
        snapshot["documents"] = self.database.names()
        snapshot["slow_queries"] = self.slow_log.snapshot()
        # merge the LRU-internal counters without letting their
        # "hits"/"misses" (bumped by every key probe, including the
        # pre-execution lookups) clobber the request-level ones
        for section, cache in (("result_cache", self.result_cache),
                               ("plan_cache", self.plan_cache)):
            lru = cache.stats()
            snapshot[section]["size"] = lru["size"]
            snapshot[section]["capacity"] = lru["capacity"]
            snapshot[section]["evictions"] = lru["evictions"]
            snapshot[section]["lru"] = {"hits": lru["hits"],
                                        "misses": lru["misses"]}
        snapshot["resilience"] = {
            "breakers": self.breakers.snapshot(),
            "breaker_states": self.breakers.state_counts(),
            "queue_wait_p95": self.queue_wait.p95(),
            "queue_wait_samples": len(self.queue_wait),
        }
        snapshot["config"] = {
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "per_client": self.config.per_client,
            "use_processes": self.config.use_processes,
            "default_timeout": self.config.default_timeout,
            "breaker_threshold": self.config.breaker_threshold,
            "watchdog_multiple": self.config.watchdog_multiple,
        }
        store = self.database.durable_store
        if store is not None:
            snapshot["durability"] = {
                "store_path": self.config.store_path,
                "fsync": self.config.fsync,
                "store_version": store.store_version,
                "wal_bytes": store.wal.size if store.wal else 0,
                "checkpoints": store.checkpoints,
                "recovery": (self.recovery.to_dict()
                             if self.recovery is not None else None),
            }
        return snapshot

    def note_retry(self, client: str) -> None:
        """Account one retried arrival (the wire layer calls this when a
        request carries ``attempt > 1``) — the server-visible view of
        client retry activity."""
        self.metrics.note_client_retry(client)

    def health(self) -> Dict[str, Any]:
        """The liveness view: drain state, recovery, breakers, watchdog.

        Always answerable (health is about *reporting* state, readiness
        is about *accepting* work — see :meth:`ready`).
        """
        draining = self.admission.draining or self._closed
        return {
            "status": "draining" if draining else "ok",
            "draining": draining,
            "in_flight": self.admission.in_flight,
            "documents": len(self.database.names()),
            "breakers": self.breakers.state_counts(),
            "watchdog_recycles": self.metrics.watchdog_recycles,
            "shed": self.metrics.shed_snapshot(),
            "recovery": (self.recovery.to_dict()
                         if self.recovery is not None else None),
        }

    def ready(self) -> Tuple[bool, str]:
        """Whether the service should receive new traffic, plus why not.

        Not ready while draining/closed or before any document is
        registered; a durable store that needed recovery is ready as
        soon as the (synchronous, startup-time) recovery finished.
        """
        if self._closed:
            return False, "service closed"
        if self.admission.draining:
            return False, "draining"
        if not self.database.names():
            return False, "no documents registered"
        return True, "ok"

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight work, cancel stragglers.

        Returns True when everything finished inside the deadline, False
        when stragglers had to be cancelled.
        """
        self.admission.start_draining()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout)
        clean = True
        while True:
            with self._lock:
                pending = [entry.future
                           for entry in self._in_flight.values()]
            if not pending:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                clean = False
                self.cancel_all("drain deadline expired")
                break
            try:
                pending[0].result(timeout=min(remaining, 0.1))
            except Exception:
                pass  # response futures never raise; timeout just loops
        return clean

    def shutdown(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Drain, stop the pool, and return the final stats snapshot."""
        with self._lock:
            if self._closed:
                return self.stats()
            self._closed = True
        self.drain(timeout)
        self._watchdog_stop.set()
        with self._lock:
            watchdog, self._watchdog = self._watchdog, None
        if watchdog is not None:
            watchdog.join(timeout=2.0)
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        stats = self.stats()  # snapshot durability before the store closes
        try:
            self.database.close_store()
        except Exception:
            logger.exception("durable store close failed")
        logger.info("service shutdown: %s", self.metrics.summary())
        return stats

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
