"""The TCP front end: ``repro-gql serve``.

A :class:`socketserver.ThreadingTCPServer` speaking the newline-delimited
JSON protocol of :mod:`repro.service.protocol`.  Each connection gets a
handler thread that reads requests sequentially; query execution itself
happens on the :class:`~repro.service.QueryService` worker pool, so the
handler thread only blocks waiting for its own responses and admission
control stays global across connections.

Graceful drain: :meth:`QueryServer.shutdown_gracefully` (wired to
SIGTERM/SIGINT by the CLI) closes the listening socket first — new
connections are refused immediately — then drains the service: in-flight
queries finish or are cancelled at the drain deadline, and final metrics
are logged.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
from typing import Any, Dict, Optional, Tuple

from .protocol import (
    ProtocolError,
    decode,
    encode,
    error_response,
    validate_request,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
)
from ..runtime import Outcome
from .resilience import DuplicateRequestTable
from .service import QueryRequest, QueryService

logger = logging.getLogger(__name__)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a sequential request/response session."""

    #: fully buffered reads; the per-line memory bound comes from the
    #: size argument passed to ``readline`` in :meth:`handle`
    rbufsize = -1

    def setup(self) -> None:
        super().setup()
        self.server._track_handler(self)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server._untrack_handler(self)  # type: ignore[attr-defined]
        super().finish()

    def handle(self) -> None:
        server: "QueryServer" = self.server  # type: ignore[assignment]
        while not server.draining:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                break
            if not line:
                break  # client closed
            if len(line) > MAX_LINE_BYTES:
                # readline stopped mid-line: the tail of this oversized
                # line is still unread and would otherwise be parsed as
                # spurious new requests. Reject and close the connection
                # — there is no way to stay in sync with the stream.
                self._send(error_response(
                    None, "request line exceeds the protocol size limit"))
                break
            stripped = line.strip()
            if not stripped:
                # blank keepalive/noise lines get a structured error so
                # broken clients notice instead of silently stalling
                if not self._send(error_response(
                        None,
                        "empty line (a message must be a JSON object)")):
                    break
                continue
            if not self._send(server.handle_message(stripped)):
                break

    def _send(self, response: Dict[str, Any]) -> bool:
        """Write one response line; False when the connection is gone."""
        try:
            payload = encode(response)
        except ProtocolError as exc:
            # the result set outgrew the line limit (e.g. a cancelled
            # query carrying a huge partial answer): deliver the
            # outcome without the rows rather than dropping the
            # connection
            payload = encode(_without_results(response, str(exc)))
        try:
            self.wfile.write(payload)
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


def _without_results(response: Dict[str, Any], error: str) -> Dict[str, Any]:
    """A query response stripped to its envelope + outcome."""
    slim = {key: response[key] for key in
            ("id", "op", "request_id", "client", "outcome", "cache",
             "elapsed") if key in response}
    slim["ok"] = False
    slim["results"] = []
    slim["error"] = f"results dropped: {error}"
    return slim


class QueryServer(socketserver.ThreadingTCPServer):
    """The serving socket around one :class:`QueryService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: QueryService,
                 address: Tuple[str, int] = ("127.0.0.1", 0)) -> None:
        self.service = service
        self._draining = threading.Event()
        self._drained = threading.Event()
        # live connection handlers and their threads; daemon_threads
        # means the base class never joins them, so graceful shutdown
        # keeps its own registry to close and join (bounded) before the
        # final metrics/slow-log dump
        self._handlers: Dict[Any, threading.Thread] = {}
        self._handlers_lock = threading.Lock()
        size = service.config.dup_table_size
        self.dup_table = (DuplicateRequestTable(size) if size > 0 else None)
        super().__init__(address, _Handler)

    def _track_handler(self, handler: Any) -> None:
        with self._handlers_lock:
            self._handlers[handler] = threading.current_thread()

    def _untrack_handler(self, handler: Any) -> None:
        with self._handlers_lock:
            self._handlers.pop(handler, None)

    # -- request dispatch -----------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun."""
        return self._draining.is_set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when bound with 0."""
        return self.server_address[:2]

    def handle_message(self, line: bytes) -> Dict[str, Any]:
        """Decode, dispatch and answer one request line."""
        try:
            message = decode(line)
        except ProtocolError as exc:
            return error_response(None, str(exc))
        request_id = message.get("id")
        try:
            op = validate_request(message)
        except ProtocolError as exc:
            return error_response(request_id, str(exc))
        try:
            if op == "ping":
                return {"id": request_id, "ok": True, "op": "ping",
                        "version": PROTOCOL_VERSION,
                        "draining": self.draining}
            if op == "health":
                report = self.service.health()
                report["draining"] = bool(report["draining"]
                                          or self.draining)
                return {"id": request_id, "ok": True, "op": "health",
                        "health": report}
            if op == "ready":
                ready, reason = self.service.ready()
                if ready and self.draining:
                    ready, reason = False, "draining"
                host, port = self.address
                return {"id": request_id, "ok": True, "op": "ready",
                        "ready": ready, "reason": reason,
                        "host": host, "port": port}
            if op == "stats":
                if message.get("format") == "prometheus":
                    return {"id": request_id, "ok": True, "op": "stats",
                            "stats_text": self.service.metrics_text()}
                return {"id": request_id, "ok": True, "op": "stats",
                        "stats": self.service.stats()}
            if op == "explain":
                report = self.service.explain(
                    message["query"],
                    document=message.get("document", "data"),
                    analyze=bool(message.get("analyze", False)),
                    baseline=bool(message.get("baseline", False)),
                    limit=message.get("limit"),
                    timeout=message.get("timeout"),
                )
                return {"id": request_id, "ok": True, "op": "explain",
                        "explain": report}
            if op == "cancel":
                cancelled = self.service.cancel(
                    message["target"],
                    reason=message.get("reason", "cancelled by client"),
                )
                return {"id": request_id, "ok": True, "op": "cancel",
                        "target": message["target"], "cancelled": cancelled}
            return self._handle_query(message, request_id)
        except Exception as exc:  # never kill the connection on a bug
            logger.exception("request %r failed", request_id)
            return error_response(request_id, f"internal error: {exc}")

    def _handle_query(self, message: Dict[str, Any],
                      request_id: Optional[str]) -> Dict[str, Any]:
        client = str(message.get("client", "anon"))
        attempt = message.get("attempt")
        if isinstance(attempt, int) and attempt > 1:
            self.service.note_retry(client)
        dup_key = self._dup_key(message, request_id, client)
        # only a declared retry (an idempotency key or attempt > 1) may
        # *read* the table: separate client instances restart their id
        # counters, so a bare id match is not proof of a retry
        is_retry = (isinstance(message.get("idempotency_key"), str)
                    or (isinstance(attempt, int) and attempt > 1))
        if dup_key is not None and is_retry:
            cached = self.dup_table.get(dup_key)
            if cached is not None:
                self.service.metrics.count("duplicate_requests")
                replay = dict(cached)
                replay["duplicate"] = True
                if isinstance(request_id, str) and request_id:
                    # echo the *incoming* id: a key-based retry may
                    # arrive under a fresh wire id
                    replay["id"] = request_id
                return replay
        request = QueryRequest(
            query=message["query"],
            document=message.get("document", "data"),
            client=client,
            limit=message.get("limit"),
            timeout=message.get("timeout"),
            max_steps=message.get("max_steps"),
            max_memory=message.get("max_memory"),
            baseline=bool(message.get("baseline", False)),
            use_cache=not message.get("no_cache", False),
        )
        trace, parent = message.get("trace"), message.get("parent")
        if isinstance(trace, int) and isinstance(parent, int):
            request.trace_parent = (trace, parent)
        if isinstance(request_id, str) and request_id:
            request.request_id = request_id
        response = self.service.submit(request).result()
        payload = response.to_dict()
        payload["id"] = request.request_id
        payload["ok"] = response.error is None
        payload["op"] = "query"
        try:
            # the snapshot version the answer was computed against:
            # replicated coordinators compare these across the replicas
            # of one slice to detect divergent stores
            payload["versions"] = {
                request.document:
                    self.service.document_version(request.document)}
        except KeyError:
            pass  # unknown document: the outcome already says so
        if (dup_key is not None and payload["ok"]
                and response.outcome.status in
                (Outcome.COMPLETE, Outcome.TRUNCATED)):
            # remember only *useful* executed outcomes: shed, rejected
            # and errored requests never ran, and timed-out/cancelled
            # ones produced nothing worth replaying — a retry of any of
            # those should get a fresh attempt, not the old refusal
            self.dup_table.put(dup_key, payload)
        return payload

    def _dup_key(self, message: Dict[str, Any],
                 request_id: Optional[str],
                 client: str) -> Optional[Tuple[str, str, str]]:
        """The duplicate-request table key for this query, if any.

        An explicit ``idempotency_key`` opts any query in; otherwise a
        client-supplied request id identifies retries of the same call.
        Queries with neither (server-generated ids) are never deduped.
        """
        if self.dup_table is None:
            return None
        idem = message.get("idempotency_key")
        if isinstance(idem, str) and idem:
            return (client, "key", idem)
        if isinstance(request_id, str) and request_id:
            return (client, "id", request_id)
        return None

    # -- lifecycle ------------------------------------------------------------

    def serve_until_shutdown(self, poll_interval: float = 0.2) -> None:
        """``serve_forever`` plus the drain handshake on the way out."""
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            self._drained.wait(timeout=self.service.config.drain_timeout + 1)

    def shutdown_gracefully(self,
                            drain_timeout: Optional[float] = None) -> bool:
        """Refuse new work, drain in-flight queries, stop the pool.

        Safe to call from a signal handler thread.  Returns True when
        every in-flight query finished inside the drain deadline.
        """
        if self._draining.is_set():
            self._drained.wait()
            return True
        self._draining.set()
        # stop accepting and close the listening socket *first*: clients
        # see connection refused for the entire drain window
        self.shutdown()
        self.server_close()
        clean = self.service.drain(drain_timeout)
        self.service.shutdown(timeout=0)
        # join handler threads (bounded) before the final dumps so the
        # metrics summary and slow-query log include every response the
        # handlers were still writing; daemon threads would otherwise
        # race the dump (or die mid-write on interpreter exit)
        self._join_handlers(timeout=2.0)
        logger.info("drained %s: %s",
                    "cleanly" if clean else "with cancellations",
                    self.service.metrics.summary())
        for line in self.service.slow_log.render_lines():
            logger.info("slow query: %s", line)
        self._drained.set()
        return clean

    def _join_handlers(self, timeout: float) -> bool:
        """Close lingering connections, then join their threads.

        Handlers blocked in ``readline`` on idle connections never see
        the draining flag on their own; shutting their sockets down
        unblocks them.  Returns True when every handler thread exited
        inside the shared *timeout* budget.
        """
        with self._handlers_lock:
            handlers = dict(self._handlers)
        for handler in handlers:
            try:
                handler.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for thread in handlers.values():
            if thread is threading.current_thread():
                continue  # shutdown issued from inside a handler
            thread.join(max(0.0, deadline - time.monotonic()))
        return not any(
            thread.is_alive() for thread in handlers.values()
            if thread is not threading.current_thread())


def probe(host: str, port: int, timeout: float = 0.5) -> bool:
    """Whether something is accepting TCP connections at host:port."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
