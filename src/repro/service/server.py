"""The TCP front end: ``repro-gql serve``.

A :class:`socketserver.ThreadingTCPServer` speaking the newline-delimited
JSON protocol of :mod:`repro.service.protocol`.  Each connection gets a
handler thread that reads requests sequentially; query execution itself
happens on the :class:`~repro.service.QueryService` worker pool, so the
handler thread only blocks waiting for its own responses and admission
control stays global across connections.

Graceful drain: :meth:`QueryServer.shutdown_gracefully` (wired to
SIGTERM/SIGINT by the CLI) closes the listening socket first — new
connections are refused immediately — then drains the service: in-flight
queries finish or are cancelled at the drain deadline, and final metrics
are logged.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from .protocol import (
    ProtocolError,
    decode,
    encode,
    error_response,
    validate_request,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
)
from .service import QueryRequest, QueryService

logger = logging.getLogger(__name__)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a sequential request/response session."""

    #: fully buffered reads; the per-line memory bound comes from the
    #: size argument passed to ``readline`` in :meth:`handle`
    rbufsize = -1

    def handle(self) -> None:
        server: "QueryServer" = self.server  # type: ignore[assignment]
        while not server.draining:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                break
            if not line:
                break  # client closed
            if len(line) > MAX_LINE_BYTES:
                # readline stopped mid-line: the tail of this oversized
                # line is still unread and would otherwise be parsed as
                # spurious new requests. Reject and close the connection
                # — there is no way to stay in sync with the stream.
                self._send(error_response(
                    None, "request line exceeds the protocol size limit"))
                break
            stripped = line.strip()
            if not stripped:
                continue
            if not self._send(server.handle_message(stripped)):
                break

    def _send(self, response: Dict[str, Any]) -> bool:
        """Write one response line; False when the connection is gone."""
        try:
            payload = encode(response)
        except ProtocolError as exc:
            # the result set outgrew the line limit (e.g. a cancelled
            # query carrying a huge partial answer): deliver the
            # outcome without the rows rather than dropping the
            # connection
            payload = encode(_without_results(response, str(exc)))
        try:
            self.wfile.write(payload)
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


def _without_results(response: Dict[str, Any], error: str) -> Dict[str, Any]:
    """A query response stripped to its envelope + outcome."""
    slim = {key: response[key] for key in
            ("id", "op", "request_id", "client", "outcome", "cache",
             "elapsed") if key in response}
    slim["ok"] = False
    slim["results"] = []
    slim["error"] = f"results dropped: {error}"
    return slim


class QueryServer(socketserver.ThreadingTCPServer):
    """The serving socket around one :class:`QueryService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: QueryService,
                 address: Tuple[str, int] = ("127.0.0.1", 0)) -> None:
        self.service = service
        self._draining = threading.Event()
        self._drained = threading.Event()
        super().__init__(address, _Handler)

    # -- request dispatch -----------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun."""
        return self._draining.is_set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when bound with 0."""
        return self.server_address[:2]

    def handle_message(self, line: bytes) -> Dict[str, Any]:
        """Decode, dispatch and answer one request line."""
        try:
            message = decode(line)
        except ProtocolError as exc:
            return error_response(None, str(exc))
        request_id = message.get("id")
        try:
            op = validate_request(message)
        except ProtocolError as exc:
            return error_response(request_id, str(exc))
        try:
            if op == "ping":
                return {"id": request_id, "ok": True, "op": "ping",
                        "version": PROTOCOL_VERSION,
                        "draining": self.draining}
            if op == "stats":
                if message.get("format") == "prometheus":
                    return {"id": request_id, "ok": True, "op": "stats",
                            "stats_text": self.service.metrics_text()}
                return {"id": request_id, "ok": True, "op": "stats",
                        "stats": self.service.stats()}
            if op == "explain":
                report = self.service.explain(
                    message["query"],
                    document=message.get("document", "data"),
                    analyze=bool(message.get("analyze", False)),
                    baseline=bool(message.get("baseline", False)),
                    limit=message.get("limit"),
                    timeout=message.get("timeout"),
                )
                return {"id": request_id, "ok": True, "op": "explain",
                        "explain": report}
            if op == "cancel":
                cancelled = self.service.cancel(
                    message["target"],
                    reason=message.get("reason", "cancelled by client"),
                )
                return {"id": request_id, "ok": True, "op": "cancel",
                        "target": message["target"], "cancelled": cancelled}
            return self._handle_query(message, request_id)
        except Exception as exc:  # never kill the connection on a bug
            logger.exception("request %r failed", request_id)
            return error_response(request_id, f"internal error: {exc}")

    def _handle_query(self, message: Dict[str, Any],
                      request_id: Optional[str]) -> Dict[str, Any]:
        request = QueryRequest(
            query=message["query"],
            document=message.get("document", "data"),
            client=str(message.get("client", "anon")),
            limit=message.get("limit"),
            timeout=message.get("timeout"),
            max_steps=message.get("max_steps"),
            max_memory=message.get("max_memory"),
            baseline=bool(message.get("baseline", False)),
            use_cache=not message.get("no_cache", False),
        )
        if isinstance(request_id, str) and request_id:
            request.request_id = request_id
        response = self.service.submit(request).result()
        payload = response.to_dict()
        payload["id"] = request.request_id
        payload["ok"] = response.error is None
        payload["op"] = "query"
        return payload

    # -- lifecycle ------------------------------------------------------------

    def serve_until_shutdown(self, poll_interval: float = 0.2) -> None:
        """``serve_forever`` plus the drain handshake on the way out."""
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            self._drained.wait(timeout=self.service.config.drain_timeout + 1)

    def shutdown_gracefully(self,
                            drain_timeout: Optional[float] = None) -> bool:
        """Refuse new work, drain in-flight queries, stop the pool.

        Safe to call from a signal handler thread.  Returns True when
        every in-flight query finished inside the drain deadline.
        """
        if self._draining.is_set():
            self._drained.wait()
            return True
        self._draining.set()
        # stop accepting and close the listening socket *first*: clients
        # see connection refused for the entire drain window
        self.shutdown()
        self.server_close()
        clean = self.service.drain(drain_timeout)
        self.service.shutdown(timeout=0)
        logger.info("drained %s: %s",
                    "cleanly" if clean else "with cancellations",
                    self.service.metrics.summary())
        for line in self.service.slow_log.render_lines():
            logger.info("slow query: %s", line)
        self._drained.set()
        return clean


def probe(host: str, port: int, timeout: float = 0.5) -> bool:
    """Whether something is accepting TCP connections at host:port."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
