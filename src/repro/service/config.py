"""Service tuning knobs, gathered in one place.

Every knob has a conservative default that works for the test-scale
graphs in this repository; ``docs/service.md`` discusses how to size
them for real deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime import CancellationToken, ExecutionContext


@dataclass
class ServiceConfig:
    """Configuration of one :class:`~repro.service.QueryService`.

    Sizing rules of thumb:

    * ``workers`` bounds CPU use.  The matcher is pure Python, so thread
      workers only overlap during the interpreter's frequent GIL yields;
      ``use_processes=True`` trades per-request cancellation and shared
      graph mutation for true CPU parallelism.
    * ``queue_depth`` is how many admitted requests may *wait* beyond the
      ones actively running.  Admission rejects (it never blocks) once
      ``workers + queue_depth`` requests are in flight — load shedding
      with a structured ``REJECTED`` outcome instead of unbounded queues.
    * ``per_client`` caps one client's in-flight share so a single noisy
      client cannot monopolise the pool.
    * the ``default_*`` budgets seed each admitted request's
      :class:`~repro.runtime.ExecutionContext`; a request may *tighten*
      them but never exceed ``default_timeout`` (the service-level SLO).
    """

    workers: int = 4
    queue_depth: int = 16
    per_client: int = 8
    use_processes: bool = False

    # per-request governance defaults (None = unlimited)
    default_timeout: Optional[float] = 30.0
    default_max_steps: Optional[int] = None
    default_max_results: Optional[int] = 1000
    default_max_memory: Optional[int] = None

    # cache capacities (entries); 0 disables the cache
    plan_cache_size: int = 256
    result_cache_size: int = 256

    # seconds shutdown waits for in-flight queries before cancelling them
    drain_timeout: float = 5.0

    # slow-query log: keep the slow_log_size slowest requests whose
    # latency is >= slow_log_threshold seconds (0.0 = the slowest of all)
    slow_log_size: int = 32
    slow_log_threshold: float = 0.0

    # durable storage: when set, the service opens this WAL-backed
    # GraphStore on startup (running crash recovery), registers every
    # document it holds, and writes register/load mutations through it
    store_path: Optional[str] = None
    fsync: str = "commit"

    # deadline-aware load shedding: a request whose effective timeout is
    # below the observed p95 queue wait is shed with a SHED outcome and
    # a retry-after hint.  The estimator stays cold (never sheds) until
    # shed_min_samples waits have been observed.
    shed_enabled: bool = True
    shed_min_samples: int = 10
    shed_window: int = 256

    # per-client circuit breaker: breaker_threshold consecutive
    # failures/timeouts open the circuit for breaker_cooldown seconds
    # (then one HALF_OPEN probe decides).  0 disables the breaker.
    breaker_threshold: int = 8
    breaker_cooldown: float = 5.0

    # pool watchdog: a request still unfinished after
    # watchdog_multiple x its effective timeout is considered *stuck*
    # (the worker is wedged past any cooperative deadline), answered
    # TIMED_OUT, and its pool is recycled.  0 disables the watchdog;
    # requests without an effective timeout are never watched.
    watchdog_multiple: float = 4.0
    watchdog_interval: float = 0.25

    # duplicate-request table: completed responses remembered per
    # (client, request id / idempotency key) so client retries are
    # answered without re-executing.  0 disables the table.
    dup_table_size: int = 512

    # admission-time static analysis: textual queries with error-severity
    # diagnostics (unbound variables, syntax errors) are answered
    # REJECTED/invalid_query without ever reaching a worker.  The verdict
    # is cached per query text; 0 disables the cache, False disables the
    # check entirely.
    validate_queries: bool = True
    validation_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.per_client < 1:
            raise ValueError("per_client must be >= 1")
        if self.slow_log_size < 0:
            raise ValueError("slow_log_size must be >= 0")
        if self.slow_log_threshold < 0:
            raise ValueError("slow_log_threshold must be >= 0")
        if self.shed_min_samples < 1:
            raise ValueError("shed_min_samples must be >= 1")
        if self.shed_window < 1:
            raise ValueError("shed_window must be >= 1")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be > 0")
        if self.watchdog_multiple < 0:
            raise ValueError("watchdog_multiple must be >= 0")
        if self.watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be > 0")
        if self.dup_table_size < 0:
            raise ValueError("dup_table_size must be >= 0")
        from ..storage.wal import check_fsync_policy

        check_fsync_policy(self.fsync)

    @property
    def max_in_flight(self) -> int:
        """Running plus queued requests the service will hold at once."""
        return self.workers + self.queue_depth

    @staticmethod
    def tighten(asked, configured):
        """The effective budget: the smaller of the request's ask and
        the configured default (an unlimited default accepts any ask)."""
        if asked is None:
            return configured
        if configured is None:
            return asked
        return min(asked, configured)

    def derive_context(
        self,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_results: Optional[int] = None,
        max_memory: Optional[int] = None,
        token: Optional[CancellationToken] = None,
    ) -> ExecutionContext:
        """A per-request context from the service defaults.

        Request overrides may only tighten the service budgets: the
        effective limit is the smaller of the request's ask and the
        configured default (an unlimited default accepts any ask).
        """
        return ExecutionContext(
            timeout=self.tighten(timeout, self.default_timeout),
            max_steps=self.tighten(max_steps, self.default_max_steps),
            max_results=self.tighten(max_results, self.default_max_results),
            max_memory=self.tighten(max_memory, self.default_max_memory),
            token=token,
        )
