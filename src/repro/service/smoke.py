"""End-to-end service smoke test: ``python -m repro.service.smoke``.

Used by the CI ``service-smoke`` job (and runnable locally).  It:

1. writes a seeded synthetic graph (with a dense single-label core so
   heavy queries exist) to a temp file,
2. starts ``repro-gql serve`` as a real subprocess on an ephemeral port,
3. drives N concurrent clients: fast queries, repeated cached queries,
   queries with deadlines they cannot meet (``TIMED_OUT``), and one
   heavy in-flight query cancelled from a second connection
   (``CANCELLED``),
4. sends SIGTERM and asserts the graceful-drain contract: the socket
   refuses new connections, the process exits 0, and the final stats
   satisfy ``admitted + rejected == submitted``,
5. runs a durability cycle: serves with ``--store``, queries, SIGKILLs
   the server (no drain, no checkpoint — the WAL still holds records),
   restarts it from the store alone, and asserts the recovery counters
   appear in ``stats`` and a repeated query answers identically (and is
   served from the result cache keyed on the recovered graph versions).

Exits 0 on success, 1 with a FAIL line on the first broken invariant.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

CLIENTS = 6
QUERIES_PER_CLIENT = 8

FAST_QUERY = 'graph P { node u1 <label="L001">; node u2 <label="L002">; edge e1 (u1, u2); }'
CACHED_QUERY = 'graph P { node u1 <label="L001">; node u2 <label="L001">; edge e1 (u1, u2); }'
#: a long path over the dense single-label core: combinatorially huge
HEAVY_QUERY = ("graph P { "
               + " ".join(f'node u{i} <label="CORE">;' for i in range(7))
               + " ".join(f' edge e{i} (u{i}, u{i + 1});' for i in range(6))
               + " }")


def fail(message: str) -> None:
    print(f"FAIL: {message}", flush=True)
    sys.exit(1)


def build_graph(path: Path) -> None:
    """A synthetic graph plus a 24-node dense single-label core."""
    from ..datasets.random_graphs import erdos_renyi_graph
    from ..storage.serializer import save_graph

    graph = erdos_renyi_graph(300, 900, num_labels=8, seed=11, name="smoke")
    core = [f"core{i}" for i in range(24)]
    for node_id in core:
        graph.add_node(node_id, label="CORE")
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_edge(a, b)
    save_graph(graph, path)


def read_banner(process):
    """Read startup lines until the ``serving`` banner; return (host, port)."""
    assert process.stdout is not None
    for _ in range(10):
        line = process.stdout.readline()
        if not line:
            break
        if "serving" in line:
            # "serving 1 graph(s) on 127.0.0.1:PORT (...)"
            address = line.split(" on ", 1)[1].split(" ", 1)[0]
            host, port = address.rsplit(":", 1)
            return host, int(port)
    fail(f"server never printed its banner (last line: {line!r})")


def start_server(data: Path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(data),
         "--port", "0", "--workers", "3", "--queue-depth", "32",
         "--per-client", "16", "--timeout", "10", "--limit", "3000000",
         "--drain-timeout", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    host, port = read_banner(process)
    print(f"server up at {host}:{port}", flush=True)
    return process, host, port


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "smoke.gql"
        build_graph(data)
        process, host, port = start_server(data)
        try:
            code = drive(process, host, port)
        finally:
            if process.poll() is None:
                process.kill()
        if code != 0:
            return code
        return durability_cycle()


def drive(process, host: str, port: int) -> int:
    from ..runtime import Outcome
    from .client import ServiceClient

    outcomes: list = []
    errors: list = []

    def client_worker(index: int) -> None:
        try:
            with ServiceClient(host, port, timeout=30,
                               client_name=f"c{index}") as client:
                for q in range(QUERIES_PER_CLIENT):
                    if q % 3 == 2:
                        # a deadline this query cannot meet
                        reply = client.query(HEAVY_QUERY, timeout=0.05,
                                             no_cache=True)
                    elif q % 3 == 1:
                        reply = client.query(CACHED_QUERY, limit=100)
                    else:
                        reply = client.query(FAST_QUERY, limit=100)
                    if not reply.ok:
                        errors.append(f"c{index}/q{q}: {reply.error}")
                    if not reply.outcome.status:
                        errors.append(f"c{index}/q{q}: missing outcome")
                    outcomes.append(reply.outcome.status)
        except Exception as exc:
            errors.append(f"c{index}: {exc!r}")

    threads = [threading.Thread(target=client_worker, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()

    # meanwhile: cancel one heavy in-flight query from another connection
    canceller = ServiceClient(host, port, timeout=30, client_name="boss")
    cancel_id = "boss-heavy-1"
    cancel_result: dict = {}

    def run_heavy() -> None:
        with ServiceClient(host, port, timeout=60,
                           client_name="boss-runner") as runner:
            cancel_result["reply"] = runner.query(
                HEAVY_QUERY, request_id=cancel_id, no_cache=True)

    heavy_thread = threading.Thread(target=run_heavy)
    heavy_thread.start()
    # retry until the query is in flight: under load the server's handler
    # threads contend with the matcher for the GIL, so admission of the
    # heavy query may lag the first cancel attempt
    cancelled = False
    cancel_deadline = time.time() + 8
    while (time.time() < cancel_deadline and not cancelled
           and "reply" not in cancel_result):
        time.sleep(0.2)
        cancelled = canceller.cancel(cancel_id, reason="smoke cancel")
    heavy_thread.join(timeout=60)
    for t in threads:
        t.join(timeout=120)

    if errors:
        fail("; ".join(errors[:5]))
    reply = cancel_result.get("reply")
    if reply is None:
        fail("heavy query never returned")
    if not cancelled:
        fail("cancel() did not find the in-flight heavy query")
    if reply.outcome.status is not Outcome.CANCELLED:
        fail(f"cancelled query ended {reply.outcome.status}, "
             f"expected CANCELLED")
    if Outcome.TIMED_OUT not in outcomes:
        fail("no query timed out despite 50ms deadlines on heavy queries")
    if Outcome.COMPLETE not in outcomes:
        fail("no query completed")

    stats = canceller.stats()
    submitted = stats["submitted"]
    admitted, rejected = stats["admitted"], stats["rejected"]
    if submitted != admitted + rejected:
        fail(f"accounting broken: submitted={submitted} "
             f"admitted={admitted} rejected={rejected}")
    if stats["result_cache"]["hits"] == 0:
        fail("repeated identical query was never served from the cache")
    print(f"stats ok: submitted={submitted} admitted={admitted} "
          f"rejected={rejected} cache_hits={stats['result_cache']['hits']} "
          f"outcomes={ {k: v for k, v in stats['outcomes'].items() if v} }",
          flush=True)
    canceller.close()

    # graceful drain: SIGTERM, socket must refuse, process must exit 0
    process.send_signal(signal.SIGTERM)
    deadline = time.time() + 20
    refused = False
    while time.time() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.3):
                time.sleep(0.05)
        except OSError:
            refused = True
            break
    if not refused:
        fail("socket still accepting connections after SIGTERM")
    code = process.wait(timeout=30)
    tail = process.stdout.read() if process.stdout else ""
    if "shutdown:" not in tail:
        fail(f"no shutdown summary in server output: {tail!r}")
    if code != 0:
        fail(f"server exited {code} after SIGTERM")
    print("smoke: PASS", flush=True)
    return 0


def durability_cycle() -> int:
    """Kill -9 a durable server, restart from the store, verify recovery."""
    from .client import ServiceClient

    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "smoke.gql"
        build_graph(data)
        store = str(Path(tmp) / "state.db")
        base = [sys.executable, "-m", "repro", "serve",
                "--store", store, "--fsync", "commit",
                "--port", "0", "--workers", "2", "--timeout", "10",
                "--limit", "100000"]
        process = subprocess.Popen(base + [str(data)],
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.STDOUT, text=True)
        try:
            host, port = read_banner(process)
            with ServiceClient(host, port, timeout=30,
                               client_name="durable") as client:
                before = client.query(FAST_QUERY, limit=100)
                if not before.ok:
                    fail(f"durable query failed: {before.error}")
                stats = client.stats()
                durability = stats.get("durability")
                if durability is None:
                    fail("no durability section in stats with --store")
                if durability["wal_bytes"] == 0:
                    fail("WAL empty before the kill — nothing at stake")
            # SIGKILL: no drain, no checkpoint — like a power cut.  The
            # restart must repair from the WAL, not from a clean close.
            process.kill()
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()

        process = subprocess.Popen(base, stdout=subprocess.PIPE,
                                   stderr=subprocess.STDOUT, text=True)
        try:
            host, port = read_banner(process)
            with ServiceClient(host, port, timeout=30,
                               client_name="durable") as client:
                stats = client.stats()
                durability = stats.get("durability")
                if durability is None:
                    fail("no durability section after restart")
                recovery = durability.get("recovery")
                if not recovery or not recovery.get("ran"):
                    fail(f"no recovery report after SIGKILL: {durability}")
                if recovery["wal_records"] == 0:
                    fail("recovery found an empty WAL after SIGKILL")
                after = client.query(FAST_QUERY, limit=100)
                if not after.ok:
                    fail(f"query after recovery failed: {after.error}")
                if _rows_key(after.results) != _rows_key(before.results):
                    fail(f"recovered answer differs: "
                         f"{len(after.results)} row(s) vs "
                         f"{len(before.results)} before the kill")
                again = client.query(FAST_QUERY, limit=100)
                if again.cache != "hit":
                    fail(f"repeat query after recovery was {again.cache!r}, "
                         f"expected a result-cache hit (version-keyed "
                         f"caching broken across recovery?)")
                if _rows_key(again.results) != _rows_key(before.results):
                    fail("cached answer differs from the pre-kill answer")
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            if code != 0:
                fail(f"recovered server exited {code} after SIGTERM")
        finally:
            if process.poll() is None:
                process.kill()
    print(f"durability: PASS (recovered {recovery['wal_records']} WAL "
          f"record(s), {recovery['replayed_transactions']} txn(s) "
          f"replayed, cache hit after restart)", flush=True)
    return 0


def _rows_key(rows):
    """An order-insensitive identity for a result-row list."""
    return sorted(json.dumps(row, sort_keys=True) for row in rows)


if __name__ == "__main__":
    sys.exit(main())
