"""End-to-end service smoke test: ``python -m repro.service.smoke``.

Used by the CI ``service-smoke`` job (and runnable locally).  It:

1. writes a seeded synthetic graph (with a dense single-label core so
   heavy queries exist) to a temp file,
2. starts ``repro-gql serve`` as a real subprocess on an ephemeral port,
3. drives N concurrent clients: fast queries, repeated cached queries,
   queries with deadlines they cannot meet (``TIMED_OUT``, or ``SHED``
   once the queue-wait estimator has warmed up), and one heavy
   in-flight query cancelled from a second connection (``CANCELLED``),
4. sends SIGTERM and asserts the graceful-drain contract: the socket
   refuses new connections, the process exits 0, and the final stats
   satisfy ``admitted + rejected + shed == submitted``,
5. runs a durability cycle: serves with ``--store``, queries, SIGKILLs
   the server (no drain, no checkpoint — the WAL still holds records),
   restarts it from the store alone, and asserts the recovery counters
   appear in ``stats`` and a repeated query answers identically (and is
   served from the result cache keyed on the recovered graph versions),
6. runs an observability cycle: serves a durable store with tracing
   (``--trace-out``), a Prometheus endpoint (``--metrics-port``) and a
   slow-query threshold, then asserts the scrape endpoint parses, the
   over-threshold query lands in the slow log, ``explain`` answers over
   the wire, and the JSONL trace reconstructs one request end to end
   (admission -> cache probe -> execute -> matcher) plus the WAL commit
   spans of the durable registration.

Exits 0 on success, 1 with a FAIL line on the first broken invariant.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

CLIENTS = 6
QUERIES_PER_CLIENT = 8

FAST_QUERY = 'graph P { node u1 <label="L001">; node u2 <label="L002">; edge e1 (u1, u2); }'
CACHED_QUERY = 'graph P { node u1 <label="L001">; node u2 <label="L001">; edge e1 (u1, u2); }'
#: a long path over the dense single-label core: combinatorially huge
HEAVY_QUERY = ("graph P { "
               + " ".join(f'node u{i} <label="CORE">;' for i in range(7))
               + " ".join(f' edge e{i} (u{i}, u{i + 1});' for i in range(6))
               + " }")


def fail(message: str) -> None:
    print(f"FAIL: {message}", flush=True)
    sys.exit(1)


def build_graph(path: Path) -> None:
    """A synthetic graph plus a 24-node dense single-label core."""
    from ..datasets.random_graphs import erdos_renyi_graph
    from ..storage.serializer import save_graph

    graph = erdos_renyi_graph(300, 900, num_labels=8, seed=11, name="smoke")
    core = [f"core{i}" for i in range(24)]
    for node_id in core:
        graph.add_node(node_id, label="CORE")
    for i, a in enumerate(core):
        for b in core[i + 1:]:
            graph.add_edge(a, b)
    save_graph(graph, path)


def read_banner(process, want_metrics: bool = False):
    """Read startup lines until the ``serving`` banner.

    Returns ``(host, port)`` — or ``(host, port, metrics_port)`` with
    ``want_metrics=True``, where ``metrics_port`` comes from the
    ``metrics on HOST:PORT`` line printed before the serving banner.
    """
    assert process.stdout is not None
    metrics_port = None
    for _ in range(12):
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("metrics on "):
            # "metrics on 127.0.0.1:PORT (/metrics /stats ...)"
            address = line.split("metrics on ", 1)[1].split()[0]
            metrics_port = int(address.rsplit(":", 1)[1])
        if "serving" in line:
            # "serving 1 graph(s) on 127.0.0.1:PORT (...)"
            address = line.split(" on ", 1)[1].split(" ", 1)[0]
            host, port = address.rsplit(":", 1)
            if want_metrics:
                if metrics_port is None:
                    fail("no 'metrics on' line before the serving banner")
                return host, int(port), metrics_port
            return host, int(port)
    fail(f"server never printed its banner (last line: {line!r})")


def start_server(data: Path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(data),
         "--port", "0", "--workers", "3", "--queue-depth", "32",
         "--per-client", "16", "--timeout", "10", "--limit", "3000000",
         "--drain-timeout", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    host, port = read_banner(process)
    print(f"server up at {host}:{port}", flush=True)
    return process, host, port


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "smoke.gql"
        build_graph(data)
        process, host, port = start_server(data)
        try:
            code = drive(process, host, port)
        finally:
            if process.poll() is None:
                process.kill()
        if code != 0:
            return code
        code = durability_cycle()
        if code != 0:
            return code
        return observability_cycle()


def drive(process, host: str, port: int) -> int:
    from ..runtime import Outcome
    from .client import ServiceClient

    outcomes: list = []
    errors: list = []

    def client_worker(index: int) -> None:
        try:
            with ServiceClient(host, port, timeout=30,
                               client_name=f"c{index}") as client:
                for q in range(QUERIES_PER_CLIENT):
                    if q % 3 == 2:
                        # a deadline this query cannot meet
                        reply = client.query(HEAVY_QUERY, timeout=0.05,
                                             no_cache=True)
                    elif q % 3 == 1:
                        reply = client.query(CACHED_QUERY, limit=100)
                    else:
                        reply = client.query(FAST_QUERY, limit=100)
                    if not reply.ok:
                        errors.append(f"c{index}/q{q}: {reply.error}")
                    if not reply.outcome.status:
                        errors.append(f"c{index}/q{q}: missing outcome")
                    outcomes.append(reply.outcome.status)
        except Exception as exc:
            errors.append(f"c{index}: {exc!r}")

    threads = [threading.Thread(target=client_worker, args=(i,))
               for i in range(CLIENTS)]
    for t in threads:
        t.start()

    # meanwhile: cancel one heavy in-flight query from another connection
    canceller = ServiceClient(host, port, timeout=30, client_name="boss")
    cancel_id = "boss-heavy-1"
    cancel_result: dict = {}

    def run_heavy() -> None:
        with ServiceClient(host, port, timeout=60,
                           client_name="boss-runner") as runner:
            cancel_result["reply"] = runner.query(
                HEAVY_QUERY, request_id=cancel_id, no_cache=True)

    heavy_thread = threading.Thread(target=run_heavy)
    heavy_thread.start()
    # retry until the query is in flight: under load the server's handler
    # threads contend with the matcher for the GIL, so admission of the
    # heavy query may lag the first cancel attempt
    cancelled = False
    cancel_deadline = time.time() + 8
    while (time.time() < cancel_deadline and not cancelled
           and "reply" not in cancel_result):
        time.sleep(0.2)
        cancelled = canceller.cancel(cancel_id, reason="smoke cancel")
    heavy_thread.join(timeout=60)
    for t in threads:
        t.join(timeout=120)

    if errors:
        fail("; ".join(errors[:5]))
    reply = cancel_result.get("reply")
    if reply is None:
        fail("heavy query never returned")
    if not cancelled:
        fail("cancel() did not find the in-flight heavy query")
    if reply.outcome.status is not Outcome.CANCELLED:
        fail(f"cancelled query ended {reply.outcome.status}, "
             f"expected CANCELLED")
    if Outcome.TIMED_OUT not in outcomes and Outcome.SHED not in outcomes:
        fail("50ms deadlines on heavy queries neither timed out nor "
             "were shed")
    if Outcome.COMPLETE not in outcomes:
        fail("no query completed")

    stats = canceller.stats()
    submitted = stats["submitted"]
    admitted, rejected = stats["admitted"], stats["rejected"]
    shed = stats["shed"]["total"]
    if submitted != admitted + rejected + shed:
        fail(f"accounting broken: submitted={submitted} "
             f"admitted={admitted} rejected={rejected} shed={shed}")
    if stats["result_cache"]["hits"] == 0:
        fail("repeated identical query was never served from the cache")
    print(f"stats ok: submitted={submitted} admitted={admitted} "
          f"rejected={rejected} shed={shed} "
          f"cache_hits={stats['result_cache']['hits']} "
          f"outcomes={ {k: v for k, v in stats['outcomes'].items() if v} }",
          flush=True)
    canceller.close()

    # graceful drain: SIGTERM, socket must refuse, process must exit 0
    process.send_signal(signal.SIGTERM)
    deadline = time.time() + 20
    refused = False
    while time.time() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.3):
                time.sleep(0.05)
        except OSError:
            refused = True
            break
    if not refused:
        fail("socket still accepting connections after SIGTERM")
    code = process.wait(timeout=30)
    tail = process.stdout.read() if process.stdout else ""
    if "shutdown:" not in tail:
        fail(f"no shutdown summary in server output: {tail!r}")
    if code != 0:
        fail(f"server exited {code} after SIGTERM")
    print("smoke: PASS", flush=True)
    return 0


def durability_cycle() -> int:
    """Kill -9 a durable server, restart from the store, verify recovery."""
    from .client import ServiceClient

    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "smoke.gql"
        build_graph(data)
        store = str(Path(tmp) / "state.db")
        base = [sys.executable, "-m", "repro", "serve",
                "--store", store, "--fsync", "commit",
                "--port", "0", "--workers", "2", "--timeout", "10",
                "--limit", "100000"]
        process = subprocess.Popen(base + [str(data)],
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.STDOUT, text=True)
        try:
            host, port = read_banner(process)
            with ServiceClient(host, port, timeout=30,
                               client_name="durable") as client:
                before = client.query(FAST_QUERY, limit=100)
                if not before.ok:
                    fail(f"durable query failed: {before.error}")
                stats = client.stats()
                durability = stats.get("durability")
                if durability is None:
                    fail("no durability section in stats with --store")
                if durability["wal_bytes"] == 0:
                    fail("WAL empty before the kill — nothing at stake")
            # SIGKILL: no drain, no checkpoint — like a power cut.  The
            # restart must repair from the WAL, not from a clean close.
            process.kill()
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()

        process = subprocess.Popen(base, stdout=subprocess.PIPE,
                                   stderr=subprocess.STDOUT, text=True)
        try:
            host, port = read_banner(process)
            with ServiceClient(host, port, timeout=30,
                               client_name="durable") as client:
                stats = client.stats()
                durability = stats.get("durability")
                if durability is None:
                    fail("no durability section after restart")
                recovery = durability.get("recovery")
                if not recovery or not recovery.get("ran"):
                    fail(f"no recovery report after SIGKILL: {durability}")
                if recovery["wal_records"] == 0:
                    fail("recovery found an empty WAL after SIGKILL")
                after = client.query(FAST_QUERY, limit=100)
                if not after.ok:
                    fail(f"query after recovery failed: {after.error}")
                if _rows_key(after.results) != _rows_key(before.results):
                    fail(f"recovered answer differs: "
                         f"{len(after.results)} row(s) vs "
                         f"{len(before.results)} before the kill")
                again = client.query(FAST_QUERY, limit=100)
                if again.cache != "hit":
                    fail(f"repeat query after recovery was {again.cache!r}, "
                         f"expected a result-cache hit (version-keyed "
                         f"caching broken across recovery?)")
                if _rows_key(again.results) != _rows_key(before.results):
                    fail("cached answer differs from the pre-kill answer")
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            if code != 0:
                fail(f"recovered server exited {code} after SIGTERM")
        finally:
            if process.poll() is None:
                process.kill()
    print(f"durability: PASS (recovered {recovery['wal_records']} WAL "
          f"record(s), {recovery['replayed_transactions']} txn(s) "
          f"replayed, cache hit after restart)", flush=True)
    return 0


def observability_cycle() -> int:
    """Tracing + metrics endpoint + slow log + explain, end to end."""
    import urllib.request

    from ..obs.metrics import parse_prometheus_text
    from ..obs.trace import find_spans, read_trace, span_tree
    from .client import ServiceClient

    with tempfile.TemporaryDirectory() as tmp:
        data = Path(tmp) / "smoke.gql"
        build_graph(data)
        store = str(Path(tmp) / "state.db")
        trace_path = Path(tmp) / "trace.jsonl"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(data),
             "--store", store, "--fsync", "commit",
             "--port", "0", "--workers", "2", "--timeout", "10",
             "--limit", "100000", "--metrics-port", "0",
             "--trace-out", str(trace_path),
             "--slow-log-size", "8", "--slow-log-threshold", "0.05"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            host, port, metrics_port = read_banner(process,
                                                   want_metrics=True)
            with ServiceClient(host, port, timeout=30,
                               client_name="obs") as client:
                fast = client.query(FAST_QUERY, limit=100)
                if not fast.ok:
                    fail(f"obs fast query failed: {fast.error}")
                # a deadline the heavy query cannot meet: TIMED_OUT and
                # well over the 50ms slow-log threshold
                slow = client.query(HEAVY_QUERY, timeout=0.2,
                                    no_cache=True)
                if slow.outcome.status.value != "TIMED_OUT":
                    fail(f"heavy obs query ended {slow.outcome.status}, "
                         f"expected TIMED_OUT")

                explained = client.explain(FAST_QUERY, analyze=True)
                graphs = explained.get("graphs") or []
                if not graphs or not graphs[0].get("order"):
                    fail(f"wire explain returned no plan: {explained}")
                if graphs[0].get("actual") is None:
                    fail("explain analyze=True carried no actuals")

                text = client.stats(format="prometheus")
                wire_metrics = parse_prometheus_text(text)
                if "repro_service_submitted_total" not in wire_metrics:
                    fail(f"wire prometheus stats missing counters: "
                         f"{sorted(wire_metrics)[:5]}")

                url = f"http://{host}:{metrics_port}/metrics"
                with urllib.request.urlopen(url, timeout=10) as reply:
                    scraped = parse_prometheus_text(
                        reply.read().decode("utf-8"))
                if scraped.get("repro_service_submitted_total", 0) < 2:
                    fail(f"scrape endpoint disagrees: {scraped.get('repro_service_submitted_total')}")
                with urllib.request.urlopen(
                        f"http://{host}:{metrics_port}/stats",
                        timeout=10) as reply:
                    http_stats = json.loads(reply.read().decode("utf-8"))
                if "slow_queries" not in http_stats:
                    fail("HTTP /stats carries no slow_queries section")

                stats = client.stats()
                slow_entries = stats.get("slow_queries", [])
                if not slow_entries:
                    fail("over-threshold query never reached the slow log")
                slowest = slow_entries[0]
                if slowest["elapsed"] < 0.05:
                    fail(f"slow-log entry under threshold: {slowest}")
                if "CORE" not in slowest["query"]:
                    fail(f"slow log recorded the wrong query: "
                         f"{slowest['query'][:80]}")
                if not slowest.get("spans"):
                    fail("slow-log entry carries no span aggregates")
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            if code != 0:
                fail(f"obs server exited {code} after SIGTERM")
            tail = process.stdout.read() if process.stdout else ""
            if "slow query:" not in tail:
                fail(f"no slow-query dump in the drain output: {tail!r}")
        finally:
            if process.poll() is None:
                process.kill()

        # offline reconstruction: one request, end to end, from the JSONL
        forest = span_tree(read_trace(trace_path))
        requests = find_spans(forest, "service.request")
        if not requests:
            fail("trace holds no service.request roots")
        slow_roots = [r for r in requests
                      if r["tags"].get("status") == "TIMED_OUT"]
        if not slow_roots:
            fail("the TIMED_OUT request left no trace root")
        inside = slow_roots[0]["children"]
        child_names = {c["name"] for c in inside}
        for expected in ("service.admission", "service.cache_probe",
                         "service.execute"):
            if expected not in child_names:
                fail(f"request trace missing {expected}: {child_names}")
        execute = next(c for c in inside if c["name"] == "service.execute")
        match_spans = find_spans([execute], "match.query")
        if not match_spans:
            fail("no matcher span under the request's execute span")
        if not find_spans(match_spans, "match.search"):
            fail("no search span under the matcher span")
        if not find_spans(forest, "wal.commit"):
            fail("durable registration left no wal.commit span")
    print(f"observability: PASS ({len(requests)} request trace(s), "
          f"slowest {slowest['elapsed'] * 1000:.0f}ms in the slow log, "
          f"{len(scraped)} scraped sample(s))", flush=True)
    return 0


def _rows_key(rows):
    """An order-insensitive identity for a result-row list."""
    return sorted(json.dumps(row, sort_keys=True) for row in rows)


if __name__ == "__main__":
    sys.exit(main())
