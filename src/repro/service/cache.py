"""Prepared-query (plan) and result caches for the query service.

Both caches key on ``(document, query text, options signature, document
version)``.  The version component is the sum of the registered graphs'
mutation counters (:attr:`repro.core.graph.Graph.version` increments on
every node/edge change), so *any* mutation makes every older entry
unreachable — stale answers are impossible by construction and the dead
entries age out of the LRU instead of needing an invalidation sweep.

The plan cache stores compile artifacts (the compiled pattern and, for
single-graph documents, the search order the planner chose), saving the
parse/compile/order work on repeated queries.  The result cache stores
the final rows plus the outcome, but only for runs whose outcome is
deterministic given the key: ``COMPLETE``, or ``TRUNCATED`` by a cap
that is itself part of the key — the options signature covers the
answer cap *and* the effective step/memory budgets
(:meth:`QueryService._options_key`), so a budget-truncated partial
answer is only replayed to requests with identical budgets.  A
``TIMED_OUT`` run under one caller's deadline must never be replayed to
another caller.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..runtime import Outcome, QueryOutcome


class LRUCache:
    """A thread-safe LRU mapping with hit/miss counters.

    ``capacity == 0`` disables the cache (every get misses, puts are
    dropped), which lets callers keep one unconditional code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or None; refreshes LRU order on hit."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/update an entry, evicting the least recently used."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, predicate=None) -> int:
        """Drop entries (all, or those whose key satisfies *predicate*)."""
        with self._lock:
            if predicate is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [k for k in self._entries if predicate(k)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters for the metrics snapshot."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class CachedPlan:
    """Compile artifacts of one prepared query.

    ``orders`` maps graph names to the search order the planner chose on
    the first execution; later executions replay it through
    :attr:`repro.matching.MatchOptions.plan_order` and skip the
    cost-model work.
    """

    pattern: Any
    orders: Dict[str, List[str]] = field(default_factory=dict)


CacheKey = Tuple[str, str, Hashable, int]


def make_key(document: str, query_text: str, options_key: Hashable,
             version: int) -> CacheKey:
    """The canonical cache key shared by both caches."""
    return (document, query_text, options_key, version)


class PlanCache(LRUCache):
    """LRU of :class:`CachedPlan` keyed by (doc, text, options, version)."""


class ResultCache(LRUCache):
    """LRU of ``(rows, QueryOutcome)`` keyed like the plan cache."""

    #: Outcomes that are a pure function of the cache key and therefore
    #: safe to replay to other callers.
    CACHEABLE = (Outcome.COMPLETE, Outcome.TRUNCATED)

    def admit(self, key: CacheKey, rows: List[Dict[str, Any]],
              outcome: QueryOutcome) -> bool:
        """Store a finished query iff its outcome is deterministic."""
        if outcome.status not in self.CACHEABLE:
            return False
        self.put(key, (rows, outcome))
        return True
