"""Service resilience primitives: breakers, shed policy, dedup table.

The serving path of :class:`~repro.service.QueryService` must *bend,
not break* under adversarial load.  This module holds the three
mechanisms that make that happen, each deliberately tiny and lock-cheap:

* :class:`CircuitBreaker` / :class:`BreakerRegistry` — a per-client
  CLOSED → OPEN → HALF_OPEN state machine.  A run of consecutive
  failures or timeouts opens the circuit; while open, the client's
  requests are shed in microseconds with a ``Retry-After`` hint instead
  of burning a worker on a query that will fail anyway.  After the
  cooldown one probe request is let through (HALF_OPEN); its success
  closes the circuit, its failure re-opens it.
* :class:`QueueWaitEstimator` — a sliding window of observed
  admission-to-execution waits.  Its p95 is the *shed policy* input: a
  request whose whole deadline is below the p95 queue wait cannot
  possibly finish in time, so the service sheds it immediately with a
  structured ``SHED`` outcome (deadline-aware load shedding).
* :class:`DuplicateRequestTable` — the server side of the client's
  retry contract.  A retried request that carries the same id (or an
  explicit ``idempotency_key``) after its first attempt already
  completed is answered from this table instead of being executed
  again, which is what makes retrying mutations safe.

Everything here is deterministic and dependency-free; the chaos harness
(``tests/service/chaos.py``) drives all three through real sockets.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = [
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
    "CircuitBreaker",
    "BreakerRegistry",
    "QueueWaitEstimator",
    "DuplicateRequestTable",
]

#: Breaker states (stable strings: they appear in stats and metrics).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """One client's CLOSED → OPEN → HALF_OPEN failure breaker.

    ``threshold`` consecutive failures open the circuit for ``cooldown``
    seconds.  While open, :meth:`allow` returns the remaining cooldown
    as a retry-after hint.  After the cooldown the breaker turns
    HALF_OPEN and admits a single probe; the probe's outcome decides
    whether the circuit closes again or re-opens for another cooldown.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be > 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opened_total = 0  # times the circuit has opened (monotone)
        self._probe_in_flight = False
        self._probe_started_at: Optional[float] = None

    def allow(self) -> Tuple[bool, Optional[float]]:
        """Whether a request may pass, plus a retry-after hint when not.

        The hint is the seconds until the next HALF_OPEN probe slot —
        what the shed response carries back to the client.
        """
        with self._lock:
            if self.state == STATE_CLOSED:
                return True, None
            now = self._clock()
            if self.state == STATE_OPEN:
                remaining = (self.opened_at or now) + self.cooldown - now
                if remaining > 0:
                    return False, remaining
                self.state = STATE_HALF_OPEN
                self._probe_in_flight = False
            # HALF_OPEN: exactly one probe at a time.  A probe whose
            # outcome never arrived (its request was turned away
            # downstream, its connection died mid-flight) must not hold
            # the slot forever: after a full cooldown it is presumed
            # lost and the slot is re-offered.
            if self._probe_in_flight:
                started = self._probe_started_at
                if started is not None and now - started < self.cooldown:
                    return False, max(0.0, started + self.cooldown - now)
            self._probe_in_flight = True
            self._probe_started_at = now
            return True, None

    def release_probe(self) -> None:
        """Give back a HALF_OPEN probe slot without an outcome.

        Called when a request the breaker admitted is turned away
        before it executes (admission full, deadline shed, duplicate
        id, submit failure) or finishes with a neutral outcome: the
        probe neither succeeded nor failed, so the next request should
        get the slot instead of waiting out the lost-probe timeout.
        """
        with self._lock:
            if self.state == STATE_HALF_OPEN:
                self._probe_in_flight = False
                self._probe_started_at = None

    def record_success(self) -> None:
        """A finished request succeeded: reset towards CLOSED.

        Ignored while OPEN: a straggler admitted before the circuit
        opened that happens to succeed must not short-circuit the
        cooldown — only a HALF_OPEN probe may close the circuit during
        a partial outage.
        """
        with self._lock:
            if self.state == STATE_OPEN:
                return
            self.state = STATE_CLOSED
            self.consecutive_failures = 0
            self.opened_at = None
            self._probe_in_flight = False
            self._probe_started_at = None

    def record_failure(self) -> None:
        """A finished request failed/timed out: count towards OPEN."""
        with self._lock:
            self.consecutive_failures += 1
            if (self.state == STATE_HALF_OPEN
                    or self.consecutive_failures >= self.threshold):
                if self.state != STATE_OPEN:
                    self.opened_total += 1
                self.state = STATE_OPEN
                self.opened_at = self._clock()
                self._probe_in_flight = False
                self._probe_started_at = None

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view for ``stats()``."""
        with self._lock:
            view: Dict[str, Any] = {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "opened_total": self.opened_total,
            }
            if self.state == STATE_OPEN and self.opened_at is not None:
                view["retry_after"] = max(
                    0.0, self.opened_at + self.cooldown - self._clock())
            return view


class BreakerRegistry:
    """Per-client breakers, created on first sight of a client name."""

    def __init__(self, threshold: int = 5, cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, client: str) -> CircuitBreaker:
        """The (lazily created) breaker of one client."""
        with self._lock:
            breaker = self._breakers.get(client)
            if breaker is None:
                breaker = CircuitBreaker(self.threshold, self.cooldown,
                                         clock=self._clock)
                self._breakers[client] = breaker
            return breaker

    def allow(self, client: str) -> Tuple[bool, Optional[float]]:
        """Shorthand for ``breaker(client).allow()``."""
        return self.breaker(client).allow()

    def record(self, client: str, failed: bool) -> None:
        """Account one finished request for *client*."""
        breaker = self.breaker(client)
        if failed:
            breaker.record_failure()
        else:
            breaker.record_success()

    def release_probe(self, client: str) -> None:
        """Return *client*'s HALF_OPEN probe slot without an outcome."""
        with self._lock:
            breaker = self._breakers.get(client)
        if breaker is not None:
            breaker.release_probe()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every known client's breaker state (for ``stats()``)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {client: breaker.snapshot()
                for client, breaker in breakers.items()}

    def state_counts(self) -> Dict[str, int]:
        """How many breakers sit in each state (Prometheus gauges)."""
        counts = {STATE_CLOSED: 0, STATE_OPEN: 0, STATE_HALF_OPEN: 0}
        with self._lock:
            breakers = list(self._breakers.values())
        for breaker in breakers:
            counts[breaker.state] = counts.get(breaker.state, 0) + 1
        return counts


class QueueWaitEstimator:
    """A sliding window of queue waits with a p95 read-out.

    ``observe()`` is one deque append under a lock — cheap enough for
    the per-request hot path.  ``p95()`` returns ``None`` until
    ``min_samples`` waits have been seen, so a cold service never sheds
    on noise.
    """

    def __init__(self, window: int = 256, min_samples: int = 10) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        self._lock = threading.Lock()
        self._waits: "deque[float]" = deque(maxlen=window)

    def observe(self, wait: float) -> None:
        """Record one admission-to-execution wait (seconds)."""
        with self._lock:
            self._waits.append(max(0.0, wait))

    def p95(self) -> Optional[float]:
        """The window's 95th-percentile wait, or None while cold."""
        with self._lock:
            if len(self._waits) < self.min_samples:
                return None
            ordered = sorted(self._waits)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def __len__(self) -> int:
        with self._lock:
            return len(self._waits)


class DuplicateRequestTable:
    """A bounded LRU of completed responses keyed by (client, key).

    The server consults it before executing a query that carries an
    explicit request id or ``idempotency_key``: a key seen before is
    answered with the stored response (marked ``"duplicate": true``)
    instead of running again.  Only *useful* executed responses
    (COMPLETE/TRUNCATED) are stored — shed, rejected, timed-out,
    cancelled and internal-error responses must stay retryable, so they
    never enter the table.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Dict[str, Any]]" = OrderedDict()
        self.hits = 0

    def get(self, key: Hashable) -> Optional[Dict[str, Any]]:
        """The stored response of a repeated request, or None.

        Returns a *top-level* copy: callers may add/replace keys (the
        ``duplicate`` marker, the echoed id) but must not mutate nested
        values, which stay shared with the stored entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return dict(entry)

    def put(self, key: Hashable, response: Dict[str, Any]) -> None:
        """Remember one completed response for future duplicates."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = dict(response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self._entries), "capacity": self.capacity,
                    "hits": self.hits}
