"""Process-pool execution helpers (opt-in CPU-bound fan-out).

The matcher is pure Python, so thread workers interleave on the GIL;
``ServiceConfig(use_processes=True)`` runs queries in worker *processes*
instead.  Each worker receives the registered documents once, as GraphQL
text via the pool initializer, and rebuilds graphs + matchers lazily on
first use — after that, queries ship only their pattern text and budget
numbers across the process boundary.

Trade-offs (documented in docs/service.md): per-request cancellation
cannot reach a worker process (the token lives in the parent), and the
workers match against the snapshot taken at pool start — mutations in
the parent require re-registering the document to be visible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Per-process state installed by :func:`pool_init`.
_STATE: Dict[str, Any] = {}


def pool_init(docs_payload: Dict[str, Tuple[str, bool]]) -> None:
    """Pool initializer: stash document text, build matchers lazily."""
    _STATE["payload"] = docs_payload
    _STATE["matchers"] = {}


def _matchers_for(document: str):
    """The (lazily built) matchers of one document in this worker."""
    from ..matching.planner import GraphMatcher
    from ..storage.serializer import collection_from_text

    matchers = _STATE.setdefault("matchers", {})
    if document not in matchers:
        payload = _STATE.get("payload", {})
        if document not in payload:
            raise KeyError(f"unknown document {document!r}")
        text, directed = payload[document]
        collection = collection_from_text(text, directed=directed)
        matchers[document] = [
            (graph.name or f"#{position}", GraphMatcher(graph))
            for position, graph in enumerate(collection)
        ]
    return matchers[document]


def pool_execute(
    document: str,
    pattern_text: str,
    options_kwargs: Dict[str, Any],
    governance: Dict[str, Optional[float]],
) -> Tuple[List[Dict[str, Any]], Dict[str, Any], List[str]]:
    """Run one query in a worker process.

    Returns ``(rows, outcome_dict, degradation_notes)`` — plain
    JSON-ready values, so the result pickles cheaply back to the parent.
    """
    from ..core.pattern import GroundPattern
    from ..lang.compiler import compile_pattern_text
    from ..matching.planner import MatchOptions
    from ..runtime import ExecutionContext

    pattern = compile_pattern_text(pattern_text)
    options = MatchOptions(**options_kwargs)
    context = ExecutionContext(
        timeout=governance.get("timeout"),
        max_steps=governance.get("max_steps"),
        max_results=governance.get("max_results"),
        max_memory=governance.get("max_memory"),
    )
    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    for name, matcher in _matchers_for(document):
        if context.is_interrupted:
            break
        if isinstance(pattern, GroundPattern):
            report = matcher.match(pattern, options, context=context)
        else:
            report = matcher.match_pattern(pattern, options, context=context)
        for mapping in report.mappings:
            rows.append({
                "graph": name,
                "nodes": dict(mapping.nodes),
                "edges": dict(mapping.edges),
            })
        for note in report.degradation:
            notes.append(f"{name}: {note}")
    return rows, context.outcome().to_dict(), notes
