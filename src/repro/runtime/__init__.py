"""Resource governance for query execution (deadlines, budgets, cancellation)."""

from .context import (
    BudgetExhausted,
    CancellationToken,
    DeadlineExceeded,
    ExecutionContext,
    ExecutionInterrupted,
    MemoryBudgetExhausted,
    Outcome,
    QueryCancelled,
    QueryOutcome,
    current_outcome,
    mapping_cost,
    partial_outcome,
    rejected_outcome,
    shed_outcome,
)

__all__ = [
    "BudgetExhausted",
    "CancellationToken",
    "DeadlineExceeded",
    "ExecutionContext",
    "ExecutionInterrupted",
    "MemoryBudgetExhausted",
    "Outcome",
    "QueryCancelled",
    "QueryOutcome",
    "current_outcome",
    "mapping_cost",
    "partial_outcome",
    "rejected_outcome",
    "shed_outcome",
]
