"""Query-execution governance: deadlines, budgets, cancellation.

The paper's selection operator (Algorithm 4.1) is a backtracking
subgraph-isomorphism search whose worst case is exponential — the paper
caps experiments at 1000 answers because "the graph pattern matching
problem is NP-hard".  A production engine therefore needs every entry
point to be *bounded, interruptible and accountable*.  This module is
the shared vocabulary for that:

* :class:`ExecutionContext` — carried through the matcher, the FLWR
  evaluator, the algebra operators, the Datalog fixpoint and the SQL
  baseline.  It holds a wall-clock deadline, a step budget, an
  answer-set/memory cap and a cooperative :class:`CancellationToken`.
  Inner loops call :meth:`ExecutionContext.tick` once per unit of work;
  the expensive checks (clock reads, token polls) only run every
  ``check_every`` ticks.
* :class:`Outcome` / :class:`QueryOutcome` — structured result states:
  ``COMPLETE`` (ran to the end), ``TRUNCATED`` (an answer/step/memory
  cap stopped it early, partial results are valid), ``TIMED_OUT`` (the
  deadline expired) and ``CANCELLED`` (the token was cancelled).
* the :class:`ExecutionInterrupted` exception family — raised by
  ``tick``/``check``; search loops catch it, record it on the context
  via :meth:`ExecutionContext.mark_interrupted`, and return the partial
  results accumulated so far.

The protocol for a governed loop is::

    try:
        while work:
            context.tick()
            ... one unit of work ...
    except ExecutionInterrupted as exc:
        context.mark_interrupted(exc)
    return partial_results       # outcome available on the context
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional


class Outcome(str, Enum):
    """The terminal state of one governed execution."""

    COMPLETE = "COMPLETE"
    TRUNCATED = "TRUNCATED"
    TIMED_OUT = "TIMED_OUT"
    CANCELLED = "CANCELLED"
    #: Load shedding turned the request away before any work ran
    #: (admission control in :mod:`repro.service`); no partial results.
    REJECTED = "REJECTED"
    #: Deadline-aware shedding or an open circuit breaker turned the
    #: request away: it *could* have been admitted, but could not have
    #: finished in time.  The response carries a retry-after hint; no
    #: partial results.
    SHED = "SHED"
    #: A scatter-gather query merged answers from only *some* of the
    #: shards it was fanned out to (:mod:`repro.cluster`).  The rows
    #: present are valid, but shards that were down, shed, or timed out
    #: contributed nothing; ``detail["shards"]`` names exactly which,
    #: with ``submitted == merged + failed`` accounting.
    PARTIAL = "PARTIAL"

    def __str__(self) -> str:  # print as the bare word in CLI output
        return self.value


class ExecutionInterrupted(RuntimeError):
    """Base of all governance interruptions (partial results are valid)."""

    outcome = Outcome.TRUNCATED


class DeadlineExceeded(ExecutionInterrupted):
    """The wall-clock deadline expired."""

    outcome = Outcome.TIMED_OUT


class BudgetExhausted(ExecutionInterrupted):
    """The step budget ran out."""

    outcome = Outcome.TRUNCATED


class MemoryBudgetExhausted(BudgetExhausted):
    """The (approximate) result-memory cap was reached."""


class QueryCancelled(ExecutionInterrupted):
    """The cancellation token was triggered."""

    outcome = Outcome.CANCELLED


class CancellationToken:
    """A cooperative cancellation flag shared between caller and query.

    The caller (another thread, a signal handler, a supervising event
    loop) calls :meth:`cancel`; governed loops observe it at their next
    context check and unwind with partial results.
    """

    def __init__(self) -> None:
        self._cancelled = False
        self._lock = threading.Lock()
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Trigger cancellation (idempotent; first reason wins).

        Safe to call from any thread; governed loops in other threads
        observe the flag at their next context check.
        """
        with self._lock:
            if not self._cancelled:
                self.reason = reason
                self._cancelled = True

    def is_cancelled(self) -> bool:
        """Whether cancellation has been requested (subclassable)."""
        return self._cancelled

    @property
    def cancelled(self) -> bool:
        """Property form of :meth:`is_cancelled`."""
        return self.is_cancelled()


@dataclass
class QueryOutcome:
    """A structured execution result: status plus accounting.

    ``phase_times`` maps phase names (``"search"``, ``"refine"``,
    ``"fixpoint"``…) to seconds spent; ``steps`` is the total number of
    governed work units (candidate extensions, derived facts, rows
    examined) the execution performed.
    """

    status: Outcome = Outcome.COMPLETE
    reason: str = ""
    steps: int = 0
    results: int = 0
    memory_used: int = 0
    elapsed: float = 0.0
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: structured extras a terminal state may carry — per-shard
    #: accounting for ``PARTIAL``, degradation notes, ...; empty for
    #: plain single-node outcomes (and then omitted from the wire form)
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True iff the execution ran to its natural end."""
        return self.status is Outcome.COMPLETE

    @property
    def interrupted(self) -> bool:
        """True iff a deadline/budget/cancellation stopped the run."""
        return self.status is not Outcome.COMPLETE

    def __str__(self) -> str:
        bits = [self.status.value]
        if self.reason:
            bits.append(f"({self.reason})")
        bits.append(f"steps={self.steps}")
        bits.append(f"elapsed={self.elapsed * 1000:.1f}ms")
        return " ".join(bits)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; the one serialization the CLI's ``--json``
        output and the service wire protocol both use."""
        payload = {
            "status": self.status.value,
            "reason": self.reason,
            "steps": self.steps,
            "results": self.results,
            "memory_used": self.memory_used,
            "elapsed": self.elapsed,
            "phase_times": dict(self.phase_times),
        }
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryOutcome":
        """Rebuild an outcome from :meth:`to_dict` output (wire decode).

        Unknown keys are ignored and missing keys take the dataclass
        defaults, so the two ends of a connection may run different
        versions of the protocol.
        """
        return cls(
            status=Outcome(data.get("status", Outcome.COMPLETE.value)),
            reason=str(data.get("reason", "")),
            steps=int(data.get("steps", 0)),
            results=int(data.get("results", 0)),
            memory_used=int(data.get("memory_used", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
            phase_times={
                str(k): float(v)
                for k, v in dict(data.get("phase_times", {})).items()
            },
            detail=dict(data.get("detail") or {}),
        )


def rejected_outcome(reason: str) -> QueryOutcome:
    """The outcome of a request turned away by admission control.

    ``steps == 0`` by construction: a rejected request never executed.
    """
    return QueryOutcome(status=Outcome.REJECTED, reason=reason)


def shed_outcome(reason: str) -> QueryOutcome:
    """The outcome of a request shed before any work ran.

    Distinct from :func:`rejected_outcome`: rejection means the service
    is at capacity, shedding means this *particular* request was not
    worth starting (its deadline is hopeless, or its client's circuit
    breaker is open).  Both carry ``steps == 0``.
    """
    return QueryOutcome(status=Outcome.SHED, reason=reason)


def partial_outcome(reason: str,
                    detail: Optional[Dict[str, Any]] = None) -> QueryOutcome:
    """The outcome of a scatter-gather query some shards never answered.

    The merged rows are valid but incomplete; ``detail`` carries the
    per-shard accounting (which shards merged, which failed and why) so
    callers can decide whether a partial answer is acceptable.
    """
    return QueryOutcome(status=Outcome.PARTIAL, reason=reason,
                        detail=dict(detail) if detail else {})


#: Approximate per-mapping memory cost used by the answer-set cap
#: (a Mapping holds two small dicts of short strings).
MAPPING_BASE_COST = 200
MAPPING_ENTRY_COST = 64


def mapping_cost(mapping) -> int:
    """Approximate bytes one result mapping retains."""
    try:
        entries = len(mapping.nodes) + len(mapping.edges)
    except AttributeError:
        entries = 4
    return MAPPING_BASE_COST + MAPPING_ENTRY_COST * entries


class ExecutionContext:
    """Deadline, budgets and cancellation for one query execution.

    Parameters
    ----------
    timeout:
        Wall-clock budget in seconds (``None`` = unlimited).  The
        deadline starts when the context is created.
    max_steps:
        Budget on governed work units — backtracking extensions, derived
        Datalog facts, SQL rows examined (``None`` = unlimited).
    max_results:
        Cap on reported answers; hitting it stops the search early with
        a ``TRUNCATED`` outcome (the paper's 1000-answer termination).
    max_memory:
        Approximate cap in bytes on retained result mappings.
    token:
        A :class:`CancellationToken`; a fresh private one is created
        when omitted, reachable as :attr:`token` so callers can cancel.
    check_every:
        How many ticks between expensive checks (clock read + token
        poll).  Matching the issue's "check the context every N
        extensions"; lower values give tighter deadline precision.
    clock:
        Injectable monotonic clock (tests use a fake).

    A context may be shared across several operators and several graphs:
    the deadline and budgets are global, and once interrupted every
    subsequent :meth:`check` raises again, so downstream stages unwind
    quickly instead of starting fresh work.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_results: Optional[int] = None,
        max_memory: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        check_every: int = 128,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self._clock = clock
        self.started_at = clock()
        self.timeout = timeout
        self.deadline = None if timeout is None else self.started_at + timeout
        self.max_steps = max_steps
        self.max_results = max_results
        self.max_memory = max_memory
        self.token = token if token is not None else CancellationToken()
        self.check_every = check_every
        self.steps = 0
        self.results = 0
        self.memory_used = 0
        self.phase_times: Dict[str, float] = {}
        self.interrupted: Optional[ExecutionInterrupted] = None
        self._truncated_reason: Optional[str] = None
        self._since_check = 0

    # -- the hot path ---------------------------------------------------------

    def tick(self, n: int = 1) -> None:
        """Account *n* units of work; periodically run the full check."""
        self.steps += n
        self._since_check += n
        if self._since_check >= self.check_every:
            self._since_check = 0
            self.check()

    def check(self) -> None:
        """Run every governance check now; raises on violation."""
        if self.token.is_cancelled():
            raise QueryCancelled(self.token.reason or "cancelled")
        if self.deadline is not None and self._clock() > self.deadline:
            raise DeadlineExceeded(
                f"deadline of {self.timeout:g}s exceeded"
            )
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExhausted(
                f"step budget of {self.max_steps} exhausted"
            )
        if self.max_memory is not None and self.memory_used > self.max_memory:
            raise MemoryBudgetExhausted(
                f"memory budget of {self.max_memory} bytes exhausted"
            )

    def note_result(self, count: int = 1, memory: int = 0) -> bool:
        """Account a reported answer; True when the search should stop.

        Returning True (answer or memory cap reached) marks the
        execution ``TRUNCATED``; the result that triggered the cap is
        kept — the caps are "at least this many", like the paper's
        1000-answer termination rule.
        """
        self.results += count
        self.memory_used += memory
        if self.max_results is not None and self.results >= self.max_results:
            self.note_truncated(f"answer cap of {self.max_results} reached")
            return True
        if self.max_memory is not None and self.memory_used >= self.max_memory:
            self.note_truncated(
                f"memory cap of {self.max_memory} bytes reached"
            )
            return True
        return False

    def note_truncated(self, reason: str) -> None:
        """Record that a cap stopped the execution early (no exception)."""
        if self._truncated_reason is None:
            self._truncated_reason = reason

    def mark_interrupted(self, exc: ExecutionInterrupted) -> None:
        """Record the interruption that unwound a governed loop."""
        if self.interrupted is None:
            self.interrupted = exc

    # -- accounting -----------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Accumulate wall-clock time spent in a named phase."""
        started = self._clock()
        try:
            yield self
        finally:
            self.phase_times[name] = (
                self.phase_times.get(name, 0.0) + self._clock() - started
            )

    @property
    def elapsed(self) -> float:
        """Seconds since the context was created."""
        return self._clock() - self.started_at

    def remaining_time(self) -> Optional[float]:
        """Seconds until the deadline (None = unlimited, min 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    @property
    def is_interrupted(self) -> bool:
        """Whether a governed loop has already been unwound."""
        return self.interrupted is not None

    def outcome(self) -> QueryOutcome:
        """A structured snapshot of the execution state so far."""
        if self.interrupted is not None:
            status = self.interrupted.outcome
            reason = str(self.interrupted)
        elif self._truncated_reason is not None:
            status = Outcome.TRUNCATED
            reason = self._truncated_reason
        else:
            status = Outcome.COMPLETE
            reason = ""
        return QueryOutcome(
            status=status,
            reason=reason,
            steps=self.steps,
            results=self.results,
            memory_used=self.memory_used,
            elapsed=self.elapsed,
            phase_times=dict(self.phase_times),
        )


def current_outcome(context: Optional[ExecutionContext]) -> QueryOutcome:
    """The outcome snapshot of a context, or a COMPLETE default."""
    if context is None:
        return QueryOutcome()
    return context.outcome()
