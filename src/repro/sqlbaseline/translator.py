"""Graph ↔ relational translation for the SQL baseline (Fig. 4.2).

The data graph is stored in two tables::

    V(vid, label)     -- one row per node
    E(vid1, vid2)     -- one row per edge; undirected edges are stored in
                         both orientations (the standard trick, also used
                         by the paper's Datalog translation in Fig. 4.14)

A ground graph pattern becomes the multi-join SQL query of Fig. 4.2: one
``V`` alias per pattern node (with its label predicate), one ``E`` alias
per pattern edge (joined on both end points), and pairwise ``<>``
constraints for injectivity.  B-tree indexes are built on every column,
matching the paper's MySQL setup.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bindings import Mapping
from ..core.graph import Graph
from ..core.pattern import GroundPattern
from .engine import ExecutionStats, SQLEngine
from .relation import RelationalDatabase


class TranslationError(ValueError):
    """Raised when a pattern cannot be expressed in the V/E schema."""


def load_graph(
    graph: Graph,
    database: Optional[RelationalDatabase] = None,
    label_attr: str = "label",
    build_indexes: bool = True,
) -> RelationalDatabase:
    """Populate V and E tables from a graph (Fig. 4.2 storage)."""
    database = database if database is not None else RelationalDatabase()
    v_table = database.create_table("V", ["vid", "label"])
    e_table = database.create_table("E", ["vid1", "vid2"])
    for node in graph.nodes():
        v_table.insert((node.id, node.get(label_attr)))
    for edge in graph.edges():
        e_table.insert((edge.source, edge.target))
        if not graph.directed and edge.source != edge.target:
            e_table.insert((edge.target, edge.source))
    if build_indexes:
        for column in ("vid", "label"):
            v_table.create_index(column)
        for column in ("vid1", "vid2"):
            e_table.create_index(column)
    return database


def pattern_to_sql(pattern: GroundPattern, label_attr: str = "label") -> str:
    """Render a ground pattern as the Fig. 4.2 multi-join SQL query.

    Only label-equality node constraints are expressible in the V/E
    schema; patterns with richer predicates raise
    :class:`TranslationError` (the relational baseline in the paper is
    exercised on label-constrained patterns only).
    """
    motif = pattern.motif
    node_names = motif.node_names()
    if pattern.decomposed.residual is not None:
        raise TranslationError("graph-wide predicates are not supported in SQL mode")
    node_alias = {name: f"V{i + 1}" for i, name in enumerate(node_names)}
    select_cols = [f"{node_alias[name]}.vid" for name in node_names]
    from_parts = [f"V AS {node_alias[name]}" for name in node_names]
    conditions: List[str] = []
    for name in node_names:
        motif_node = motif.node(name)
        unsupported = set(motif_node.attrs) - {label_attr}
        if unsupported or motif_node.predicate is not None or (
            pattern.decomposed.node_preds.get(name) is not None
        ):
            raise TranslationError(
                f"pattern node {name!r} has constraints outside the V/E schema"
            )
        label = motif_node.attrs.get(label_attr)
        if label is not None:
            conditions.append(f"{node_alias[name]}.label = {_sql_literal(label)}")
    edge_aliases: List[str] = []
    for i, edge in enumerate(motif.edges()):
        if edge.attrs or edge.predicate is not None:
            raise TranslationError(
                f"pattern edge {edge.name!r} has constraints outside the V/E schema"
            )
        alias = f"E{i + 1}"
        edge_aliases.append(alias)
        from_parts.append(f"E AS {alias}")
        conditions.append(f"{node_alias[edge.source]}.vid = {alias}.vid1")
        conditions.append(f"{node_alias[edge.target]}.vid = {alias}.vid2")
    for i in range(len(node_names)):
        for j in range(i + 1, len(node_names)):
            conditions.append(
                f"{node_alias[node_names[i]]}.vid <> {node_alias[node_names[j]]}.vid"
            )
    where = " AND ".join(conditions) if conditions else "1 = 1"
    return (
        f"SELECT {', '.join(select_cols)} "
        f"FROM {', '.join(from_parts)} "
        f"WHERE {where};"
    )


def _sql_literal(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "\\'") + "'"
    return repr(value)


class SQLGraphMatcher:
    """Runs graph pattern matching through the relational engine.

    The end-to-end SQL-based implementation the experiments compare
    against: load once, then translate each pattern to SQL, execute it,
    and convert result rows back to mappings.
    """

    def __init__(
        self,
        graph: Graph,
        label_attr: str = "label",
        join_order: str = "from",
    ) -> None:
        self.graph = graph
        self.label_attr = label_attr
        self.database = load_graph(graph, label_attr=label_attr)
        self.engine = SQLEngine(self.database, join_order=join_order)

    def match(
        self,
        pattern: GroundPattern,
        limit: Optional[int] = None,
        stats: Optional[ExecutionStats] = None,
        max_rows_examined: Optional[int] = None,
        context=None,
    ) -> List[Mapping]:
        """All mappings of the pattern, computed relationally.

        For undirected graphs each automorphic image of the pattern
        appears exactly as it does in the graph-native matcher: both
        store undirected edges once per orientation, so the row set
        corresponds 1:1 to injective mappings.
        """
        sql = pattern_to_sql(pattern, self.label_attr)
        rows = self.engine.execute(
            sql, limit=limit, stats=stats, max_rows_examined=max_rows_examined,
            context=context,
        )
        names = pattern.motif.node_names()
        return [Mapping(dict(zip(names, row))) for row in rows]

    def sql_for(self, pattern: GroundPattern) -> str:
        """The SQL text the matcher would execute (for inspection/tests)."""
        return pattern_to_sql(pattern, self.label_attr)
