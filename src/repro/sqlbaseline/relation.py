"""Relations (tables) for the SQL baseline engine.

The paper's comparison system stores a graph in two tables —
``V(vid, label)`` and ``E(vid1, vid2)`` — with B-tree indexes on every
column (Section 5).  This module provides the table abstraction those
experiments need: fixed columns, tuple rows, per-column B-tree indexes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ..index.btree import BTree


class SchemaError(ValueError):
    """Raised for unknown tables/columns or arity mismatches."""


class Relation:
    """A named table: a schema (column names) and a list of tuple rows."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate column in {name!r}: {columns}")
        self.name = name
        self.columns = list(columns)
        self._col_index = {c: i for i, c in enumerate(self.columns)}
        self.rows: List[Tuple[Any, ...]] = []
        self._indexes: Dict[str, BTree] = {}

    def column_position(self, column: str) -> int:
        """The position of a column in each row tuple."""
        if column not in self._col_index:
            raise SchemaError(f"unknown column {column!r} in table {self.name!r}")
        return self._col_index[column]

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row, maintaining any indexes."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        row_tuple = tuple(row)
        position = len(self.rows)
        self.rows.append(row_tuple)
        for column, tree in self._indexes.items():
            tree.insert(row_tuple[self.column_position(column)], position)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.insert(row)

    def create_index(self, column: str) -> None:
        """Build (or rebuild) a B-tree index on one column."""
        position = self.column_position(column)
        tree = BTree()
        for row_id, row in enumerate(self.rows):
            tree.insert(row[position], row_id)
        self._indexes[column] = tree

    def has_index(self, column: str) -> bool:
        """Whether the column is indexed."""
        return column in self._indexes

    def index_lookup(self, column: str, value: Any) -> List[int]:
        """Row ids whose column equals *value* (requires an index)."""
        if column not in self._indexes:
            raise SchemaError(f"no index on {self.name}.{column}")
        return self._indexes[column].get(value)

    def index_range(
        self,
        column: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[int]:
        """Row ids whose column falls in the range (requires an index)."""
        if column not in self._indexes:
            raise SchemaError(f"no index on {self.name}.{column}")
        return [
            row_id
            for _, row_id in self._indexes[column].range(
                low, high, include_low, include_high
            )
        ]

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Iterate ``(row_id, row)`` pairs."""
        return iter(enumerate(self.rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, cols={self.columns}, rows={len(self.rows)})"


class RelationalDatabase:
    """A catalog of relations (the SQL baseline's storage layer)."""

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}

    def create_table(self, name: str, columns: Sequence[str]) -> Relation:
        """Create a table; fails if it already exists."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Relation(name, columns)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table."""
        if name not in self._tables:
            raise SchemaError(f"unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Relation:
        """Look up a table by name."""
        if name not in self._tables:
            raise SchemaError(f"unknown table {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        """Whether the table exists."""
        return name in self._tables

    def tables(self) -> List[str]:
        """All table names."""
        return list(self._tables)
