"""Executor for the SQL baseline (the paper's MySQL stand-in).

Executes :class:`~repro.sqlbaseline.sql_parser.SelectQuery` objects with
the strategy a default-configured MySQL/MyISAM would use on the Fig. 4.2
workload: a left-deep pipeline of index-nested-loop joins in FROM order.
For each table in turn, the applicable equality predicates against
already-bound tables (or literals) drive a B-tree/index lookup; remaining
predicates are filtered as soon as both sides are bound.

This implementation deliberately has **no graph knowledge**: it sees only
rows, which is the architectural point the experiments make — each pattern
edge costs joins and the search space is pruned only edge-locally, never
via neighborhood structure or global refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import span as trace_span
from ..runtime import ExecutionContext, ExecutionInterrupted
from .relation import Relation, RelationalDatabase, SchemaError
from .sql_parser import ColumnRef, Comparison, SelectQuery, parse_sql


@dataclass
class ExecutionStats:
    """Work counters for one query execution."""

    rows_examined: int = 0
    index_lookups: int = 0
    results: int = 0
    tables_in_plan: int = 0
    aborted: bool = False


class WorkBudgetExceeded(RuntimeError):
    """Raised when a query exceeds its rows-examined budget.

    The benchmarks use this the way the paper terminates long queries
    ("queries having too many hits are terminated immediately"): the SQL
    arm is cut off once it has examined a configured number of rows.
    """


class SQLEngine:
    """Evaluates conjunctive SELECT queries over a relational database."""

    def __init__(self, database: RelationalDatabase, join_order: str = "from") -> None:
        if join_order not in ("from", "greedy"):
            raise ValueError(f"unknown join order policy {join_order!r}")
        self.database = database
        self.join_order = join_order
        self._partial_results: List[Tuple[Any, ...]] = []

    # -- public API -------------------------------------------------------------

    def execute(
        self,
        query: str | SelectQuery,
        limit: Optional[int] = None,
        stats: Optional[ExecutionStats] = None,
        max_rows_examined: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Tuple[Any, ...]]:
        """Run a query (text or parsed) and return the result rows.

        *max_rows_examined* bounds the total work; exceeding it raises
        :class:`WorkBudgetExceeded` (with ``stats.aborted`` set when stats
        are collected).  A *context* governs the join pipeline cooperatively
        instead: on deadline/budget/cancellation the partial result rows
        are returned, the interruption is recorded on the context, and
        ``stats.aborted`` is set.
        """
        if isinstance(query, str):
            query = parse_sql(query)
        self._validate(query)
        order = self._plan_order(query)
        if stats is not None:
            stats.tables_in_plan = len(order)
        with trace_span("sql.execute", tables=len(order)) as sp:
            try:
                rows = self._run(query, order, limit, stats,
                                 max_rows_examined, context)
            except ExecutionInterrupted as exc:
                if context is None:
                    raise
                context.mark_interrupted(exc)
                if stats is not None:
                    stats.aborted = True
                rows = list(self._partial_results)
                sp.annotate(aborted=True)
            sp.incr("rows", len(rows))
        return rows

    # -- planning ----------------------------------------------------------------

    def _validate(self, query: SelectQuery) -> None:
        aliases = {alias for _, alias in query.tables}
        if len(aliases) != len(query.tables):
            raise SchemaError("duplicate alias in FROM list")
        for name, _ in query.tables:
            self.database.table(name)  # raises for unknown tables
        for ref in query.select:
            if ref.alias not in aliases:
                raise SchemaError(f"unknown alias {ref.alias!r} in SELECT")
        for comparison in query.where:
            for ref in comparison.column_refs():
                if ref.alias not in aliases:
                    raise SchemaError(f"unknown alias {ref.alias!r} in WHERE")

    def _plan_order(self, query: SelectQuery) -> List[Tuple[str, str]]:
        if self.join_order == "from":
            return list(query.tables)
        # greedy: start with the table with the most literal-equality
        # predicates, then repeatedly add the table with the most equality
        # links to the placed set (a mild improvement MySQL's optimizer
        # could find; exposed for the ablation benchmark)
        remaining = list(query.tables)
        placed: List[Tuple[str, str]] = []

        def literal_eqs(alias: str) -> int:
            return sum(
                1
                for c in query.where
                if c.op == "="
                and len(c.column_refs()) == 1
                and c.column_refs()[0].alias == alias
            )

        def links(alias: str, placed_aliases: set) -> int:
            count = 0
            for c in query.where:
                refs = c.column_refs()
                if c.op == "=" and len(refs) == 2:
                    pair = {refs[0].alias, refs[1].alias}
                    if alias in pair and pair - {alias} <= placed_aliases:
                        count += 1
            return count

        remaining.sort(key=lambda t: -literal_eqs(t[1]))
        placed.append(remaining.pop(0))
        while remaining:
            placed_aliases = {a for _, a in placed}
            remaining.sort(key=lambda t: -links(t[1], placed_aliases))
            placed.append(remaining.pop(0))
        return placed

    # -- execution ----------------------------------------------------------------

    def _run(
        self,
        query: SelectQuery,
        order: List[Tuple[str, str]],
        limit: Optional[int],
        stats: Optional[ExecutionStats],
        max_rows_examined: Optional[int] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[Tuple[Any, ...]]:
        tables: Dict[str, Relation] = {
            alias: self.database.table(name) for name, alias in order
        }
        # assign each WHERE conjunct to the earliest plan position where
        # all its referenced aliases are bound
        position_of = {alias: i for i, (_, alias) in enumerate(order)}
        checks_at: List[List[Comparison]] = [[] for _ in order]
        for comparison in query.where:
            refs = comparison.column_refs()
            if not refs:
                # constant comparison: evaluate once up front
                if not _apply_op(comparison.op, comparison.left, comparison.right):
                    return []
                continue
            level = max(position_of[ref.alias] for ref in refs)
            checks_at[level].append(comparison)

        results: List[Tuple[Any, ...]] = []
        # exposed so execute() can hand back partial rows on interruption
        self._partial_results = results
        binding: Dict[str, Tuple[Any, ...]] = {}
        examined = [0]

        def emit() -> bool:
            if query.select_star:
                row = tuple(
                    value
                    for _, alias in order
                    for value in binding[alias]
                )
            else:
                row = tuple(
                    binding[ref.alias][tables[ref.alias].column_position(ref.column)]
                    for ref in query.select
                )
            results.append(row)
            if stats is not None:
                stats.results += 1
            return limit is not None and len(results) >= limit

        def recurse(level: int) -> bool:
            if level == len(order):
                return emit()
            _, alias = order[level]
            table = tables[alias]
            candidates = self._access_path(
                table, alias, checks_at[level], binding, tables, stats
            )
            for row_id in candidates:
                row = table.rows[row_id]
                examined[0] += 1
                if context is not None:
                    context.tick()
                if stats is not None:
                    stats.rows_examined += 1
                if max_rows_examined is not None and examined[0] > max_rows_examined:
                    if stats is not None:
                        stats.aborted = True
                    raise WorkBudgetExceeded(
                        f"examined more than {max_rows_examined} rows"
                    )
                binding[alias] = row
                if all(
                    self._check(c, binding, tables) for c in checks_at[level]
                ):
                    if recurse(level + 1):
                        return True
                del binding[alias]
            return False

        recurse(0)
        return results

    def _access_path(
        self,
        table: Relation,
        alias: str,
        checks: List[Comparison],
        binding: Dict[str, Tuple[Any, ...]],
        tables: Dict[str, Relation],
        stats: Optional[ExecutionStats],
    ) -> Sequence[int]:
        """Choose an index lookup when an equality predicate allows it."""
        best: Optional[List[int]] = None
        for comparison in checks:
            if comparison.op != "=":
                continue
            column = None
            value: Any = _UNBOUND
            left, right = comparison.left, comparison.right
            if isinstance(left, ColumnRef) and left.alias == alias:
                column = left.column
                value = self._operand_value(right, binding, tables)
            elif isinstance(right, ColumnRef) and right.alias == alias:
                column = right.column
                value = self._operand_value(left, binding, tables)
            if column is None or value is _UNBOUND:
                continue
            if not table.has_index(column):
                continue
            if stats is not None:
                stats.index_lookups += 1
            hits = table.index_lookup(column, value)
            if best is None or len(hits) < len(best):
                best = hits
        if best is not None:
            return best
        return range(len(table.rows))

    @staticmethod
    def _operand_value(
        operand: Any,
        binding: Dict[str, Tuple[Any, ...]],
        tables: Dict[str, Relation],
    ) -> Any:
        """A literal, a bound column's value, or _UNBOUND."""
        if isinstance(operand, ColumnRef):
            row = binding.get(operand.alias)
            if row is None:
                return _UNBOUND
            return row[tables[operand.alias].column_position(operand.column)]
        return operand

    def _check(
        self,
        comparison: Comparison,
        binding: Dict[str, Tuple[Any, ...]],
        tables: Dict[str, Relation],
    ) -> bool:
        left = self._value(comparison.left, binding, tables)
        right = self._value(comparison.right, binding, tables)
        return _apply_op(comparison.op, left, right)

    @staticmethod
    def _value(operand: Any, binding, tables) -> Any:
        if isinstance(operand, ColumnRef):
            table = tables[operand.alias]
            return binding[operand.alias][table.column_position(operand.column)]
        return operand


class _UnboundType:
    def __repr__(self) -> str:
        return "UNBOUND"


_UNBOUND = _UnboundType()


def _apply_op(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise AssertionError(f"unhandled operator {op!r}")
