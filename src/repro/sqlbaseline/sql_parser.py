"""A parser for the SQL subset the baseline experiments use.

Covers exactly the query shape of Fig. 4.2 and a little more::

    SELECT a.col, b.col FROM T AS a, U AS b
    WHERE a.col = 'A' AND a.col = b.col AND a.col <> b.col AND a.n > 3

Grammar (conjunctive queries over base tables):

* select list: ``*`` or a comma list of ``alias.column``;
* from list: comma list of ``table [AS] alias``;
* where: ``AND``-conjunction of comparisons between column references
  and/or literals, with operators ``= <> != < <= > >=``.

The parser produces a :class:`SelectQuery`, executed by
:mod:`repro.sqlbaseline.engine`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
      | (?P<number>\d+\.\d+|\d+)
      | (?P<op><>|!=|<=|>=|=|<|>)
      | (?P<punct>[(),;*])
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<dot>\.)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "AS"}


class SQLSyntaxError(ValueError):
    """Raised on malformed SQL text."""


@dataclass(frozen=True)
class ColumnRef:
    """A reference ``alias.column`` (alias may be a bare table name)."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class Comparison:
    """One WHERE conjunct: ``left OP right``."""

    op: str  # one of = <> < <= > >=  (!= normalized to <>)
    left: Union[ColumnRef, Any]
    right: Union[ColumnRef, Any]

    def column_refs(self) -> List[ColumnRef]:
        """The column references this conjunct mentions."""
        return [x for x in (self.left, self.right) if isinstance(x, ColumnRef)]


@dataclass
class SelectQuery:
    """A parsed conjunctive SELECT query."""

    select: List[ColumnRef]  # empty list means SELECT *
    tables: List[Tuple[str, str]]  # (table name, alias) in FROM order
    where: List[Comparison]

    @property
    def select_star(self) -> bool:
        """Whether the query was ``SELECT *``."""
        return not self.select


def tokenize(text: str) -> List[Tuple[str, Any]]:
    """Tokenize SQL text to ``(kind, value)`` pairs."""
    tokens: List[Tuple[str, Any]] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if not match or match.start() != position:
            raise SQLSyntaxError(f"bad character at {position}: {text[position]!r}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "string":
            tokens.append(("literal", value[1:-1].replace("\\'", "'").replace('\\"', '"')))
        elif kind == "number":
            tokens.append(("literal", float(value) if "." in value else int(value)))
        elif kind == "name":
            upper = value.upper()
            if upper in _KEYWORDS:
                tokens.append(("keyword", upper))
            else:
                tokens.append(("name", value))
        elif kind == "op":
            tokens.append(("op", "<>" if value == "!=" else value))
        elif kind == "punct":
            tokens.append(("punct", value))
        elif kind == "dot":
            tokens.append(("punct", "."))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, Any]]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[Tuple[str, Any]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, Any]:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self.position += 1
        return token

    def expect(self, kind: str, value: Any = None) -> Any:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise SQLSyntaxError(f"expected {value or kind}, got {token[1]!r}")
        return token[1]

    def accept(self, kind: str, value: Any = None) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind and (value is None or token[1] == value):
            self.position += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> SelectQuery:
        self.expect("keyword", "SELECT")
        select = self._select_list()
        self.expect("keyword", "FROM")
        tables = self._from_list()
        where: List[Comparison] = []
        if self.accept("keyword", "WHERE"):
            where = self._conjunction()
        self.accept("punct", ";")
        if self.peek() is not None:
            raise SQLSyntaxError(f"trailing input: {self.peek()[1]!r}")
        return SelectQuery(select, tables, where)

    def _select_list(self) -> List[ColumnRef]:
        if self.accept("punct", "*"):
            return []
        refs = [self._column_ref()]
        while self.accept("punct", ","):
            refs.append(self._column_ref())
        return refs

    def _from_list(self) -> List[Tuple[str, str]]:
        tables = [self._table_decl()]
        while self.accept("punct", ","):
            tables.append(self._table_decl())
        return tables

    def _table_decl(self) -> Tuple[str, str]:
        name = self.expect("name")
        alias = name
        if self.accept("keyword", "AS"):
            alias = self.expect("name")
        else:
            token = self.peek()
            if token is not None and token[0] == "name":
                alias = self.next()[1]
        return (name, alias)

    def _conjunction(self) -> List[Comparison]:
        comparisons = [self._comparison()]
        while self.accept("keyword", "AND"):
            comparisons.append(self._comparison())
        return comparisons

    def _comparison(self) -> Comparison:
        left = self._operand()
        op = self.expect("op")
        right = self._operand()
        return Comparison(op, left, right)

    def _operand(self) -> Union[ColumnRef, Any]:
        token = self.next()
        if token[0] == "literal":
            return token[1]
        if token[0] == "name":
            if self.accept("punct", "."):
                column = self.expect("name")
                return ColumnRef(token[1], column)
            raise SQLSyntaxError(
                f"bare column name {token[1]!r}; qualify it as alias.column"
            )
        raise SQLSyntaxError(f"bad operand {token[1]!r}")

    def _column_ref(self) -> ColumnRef:
        name = self.expect("name")
        self.expect("punct", ".")
        column = self.expect("name")
        return ColumnRef(name, column)


def parse_sql(text: str) -> SelectQuery:
    """Parse SQL text into a :class:`SelectQuery`."""
    return _Parser(tokenize(text)).parse()
