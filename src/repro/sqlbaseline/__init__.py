"""The SQL-based comparison system (Sections 1.2 and 5 of the paper)."""

from .engine import ExecutionStats, SQLEngine, WorkBudgetExceeded
from .relation import Relation, RelationalDatabase, SchemaError
from .sql_parser import (
    ColumnRef,
    Comparison,
    SelectQuery,
    SQLSyntaxError,
    parse_sql,
    tokenize,
)
from .translator import (
    SQLGraphMatcher,
    TranslationError,
    load_graph,
    pattern_to_sql,
)

__all__ = [
    "ExecutionStats",
    "SQLEngine",
    "WorkBudgetExceeded",
    "Relation",
    "RelationalDatabase",
    "SchemaError",
    "ColumnRef",
    "Comparison",
    "SelectQuery",
    "SQLSyntaxError",
    "parse_sql",
    "tokenize",
    "SQLGraphMatcher",
    "TranslationError",
    "load_graph",
    "pattern_to_sql",
]
