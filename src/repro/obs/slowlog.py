"""A ring-buffered slow-query log.

Keeps the N *slowest* requests at or above a latency threshold (a
threshold of 0.0 keeps the N slowest of all requests).  Eviction is by
elapsed time: when the log is full, a new entry replaces the current
fastest entry only if it is slower — so the log always holds the worst
offenders seen so far, not merely the most recent ones.

Exposed through the service ``stats`` response (``slow_queries``) and
dumped on SIGTERM drain by ``repro-gql serve``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryEntry", "SlowQueryLog"]

#: Query text longer than this is truncated in the log entry.
MAX_QUERY_CHARS = 500


@dataclass
class SlowQueryEntry:
    """One logged request."""

    request_id: str
    client: str = "anon"
    document: str = "data"
    query: str = ""
    elapsed: float = 0.0
    status: str = ""
    reason: Optional[str] = None
    cache: str = "bypass"
    degradation: List[str] = field(default_factory=list)
    #: per-span-name ``{"total": seconds, "count": n}`` aggregates of the
    #: request's trace tree (empty when tracing was disabled)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    when: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``stats`` payload)."""
        return {
            "request_id": self.request_id,
            "client": self.client,
            "document": self.document,
            "query": self.query,
            "elapsed": self.elapsed,
            "status": self.status,
            "reason": self.reason,
            "cache": self.cache,
            "degradation": list(self.degradation),
            "spans": {name: dict(times)
                      for name, times in self.spans.items()},
            "when": self.when,
        }

    def summary(self) -> str:
        """One log/dump line."""
        spans = ", ".join(
            f"{name}={times['total'] * 1000:.1f}ms"
            for name, times in itertools.islice(self.spans.items(), 3))
        notes = f" degraded={len(self.degradation)}" if self.degradation else ""
        return (f"{self.elapsed * 1000:8.1f}ms {self.status:<9} "
                f"client={self.client} id={self.request_id} "
                f"cache={self.cache}{notes} "
                f"query={self.query[:80]!r}"
                + (f" [{spans}]" if spans else ""))


class SlowQueryLog:
    """Thread-safe store of the N slowest over-threshold requests."""

    def __init__(self, capacity: int = 32, threshold: float = 0.0) -> None:
        self.capacity = max(0, int(capacity))
        self.threshold = max(0.0, float(threshold))
        #: min-heap of (elapsed, seq, entry) — the root is the fastest
        #: logged entry, i.e. the next eviction victim
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.recorded = 0
        self.dropped = 0

    def record(self, entry: SlowQueryEntry) -> bool:
        """Offer one entry; returns whether it was kept."""
        if self.capacity == 0 or entry.elapsed < self.threshold:
            return False
        if len(entry.query) > MAX_QUERY_CHARS:
            entry.query = entry.query[:MAX_QUERY_CHARS] + "..."
        item = (entry.elapsed, next(self._seq), entry)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
                self.recorded += 1
                return True
            if entry.elapsed <= self._heap[0][0]:
                # faster than everything logged: not interesting
                self.dropped += 1
                return False
            heapq.heapreplace(self._heap, item)
            self.recorded += 1
            self.dropped += 1
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def entries(self) -> List[SlowQueryEntry]:
        """Logged entries, slowest first."""
        with self._lock:
            items = sorted(self._heap, reverse=True)
        return [entry for _elapsed, _seq, entry in items]

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready entries, slowest first."""
        return [entry.to_dict() for entry in self.entries()]

    def render_lines(self) -> List[str]:
        """Dump lines, slowest first (the SIGTERM drain dump)."""
        return [entry.summary() for entry in self.entries()]

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._heap = []
