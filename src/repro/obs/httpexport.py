"""A minimal plain-HTTP metrics scrape endpoint.

Serves ``GET /metrics`` (Prometheus text exposition) and ``GET /stats``
(the JSON snapshot) from callbacks, on a daemon thread.  Optional
``health_fn``/``ready_fn`` callbacks add ``GET /health`` (liveness
report, always 200 while the process serves) and ``GET /ready``
(readiness probe: 200 when accepting work, 503 while draining,
recovering or before documents are loaded).  Enabled by
``repro-gql serve --metrics-port``; deliberately tiny — no TLS, no auth,
bind it to loopback (the default) or behind a scrape proxy.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional, Tuple

__all__ = ["MetricsHTTPExporter"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHTTPExporter:
    """Background HTTP server exposing /metrics and /stats."""

    def __init__(
        self,
        text_fn: Callable[[], str],
        json_fn: Optional[Callable[[], Any]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        health_fn: Optional[Callable[[], Any]] = None,
        ready_fn: Optional[Callable[[], Tuple[bool, str]]] = None,
    ) -> None:
        self._text_fn = text_fn
        self._json_fn = json_fn
        self._health_fn = health_fn
        self._ready_fn = ready_fn
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    exporter._reply(self, PROMETHEUS_CONTENT_TYPE,
                                    exporter._text_fn)
                elif path == "/stats" and exporter._json_fn is not None:
                    exporter._reply(
                        self, "application/json",
                        lambda: json.dumps(exporter._json_fn(),
                                           default=str, indent=2))
                elif path == "/health" and exporter._health_fn is not None:
                    exporter._reply(
                        self, "application/json",
                        lambda: json.dumps(exporter._health_fn(),
                                           default=str, indent=2))
                elif path == "/ready" and exporter._ready_fn is not None:
                    exporter._reply_ready(self)
                else:
                    self.send_error(404)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the server log

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _reply(handler: BaseHTTPRequestHandler, content_type: str,
               body_fn: Callable[[], str]) -> None:
        try:
            body = body_fn().encode("utf-8")
        except Exception as exc:  # a broken callback must not kill scrapes
            handler.send_error(500, explain=str(exc))
            return
        handler.send_response(200)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def _reply_ready(self, handler: BaseHTTPRequestHandler) -> None:
        """/ready: 200 when accepting work, 503 (with reason) when not."""
        try:
            ready, reason = self._ready_fn()  # type: ignore[misc]
        except Exception as exc:
            ready, reason = False, f"readiness check failed: {exc}"
        body = json.dumps({"ready": ready, "reason": reason},
                          indent=2).encode("utf-8")
        handler.send_response(200 if ready else 503)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound — port is resolved for port 0."""
        return self._server.server_address[:2]

    def start(self) -> "MetricsHTTPExporter":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-exporter", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
