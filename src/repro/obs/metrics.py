"""Counters, gauges and histograms with Prometheus/JSON renderers.

A :class:`MetricsRegistry` is a named family store: ``counter()`` /
``gauge()`` / ``histogram()`` get-or-create an instrument, optionally
distinguished by static labels (``labels={"status": "COMPLETE"}``).
:func:`render_prometheus` writes the classic text exposition format
(``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le="..."}``
samples) and :func:`render_json` a JSON mirror of the same data.

:class:`Histogram` is the generalization of what used to be
``repro.service.metrics.LatencyHistogram`` (which is now an alias of
it): fixed sorted bucket bounds, :func:`bisect.bisect_left` bucket
lookup instead of a linear scan, cumulative Prometheus-style counts in
:meth:`Histogram.snapshot`.

Metric naming conventions (see ``docs/observability.md``): prefix
``repro_``, snake_case, ``_total`` suffix on counters, ``_seconds`` /
``_bytes`` unit suffixes on histograms and gauges.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "render_json",
    "parse_prometheus_text",
]

#: Default histogram bucket upper bounds, in seconds (the last bucket is
#: unbounded).  Chosen to straddle the paper's millisecond-scale queries
#: and pathological multi-second stragglers.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str = "", help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: float = 1) -> None:
        """Add *n* to the counter."""
        with self._lock:
            self._value += n

    @property
    def value(self):
        """The current count."""
        with self._lock:
            return self._value

    def snapshot(self):
        """JSON-ready value."""
        return self.value


class Gauge:
    """A settable value, or a live callback read at collection time."""

    kind = "gauge"

    def __init__(self, name: str = "", help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge (ignored for callback gauges)."""
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        """Adjust the gauge by *n* (ignored for callback gauges)."""
        with self._lock:
            self._value += n

    @property
    def value(self):
        """The current value (callback gauges read their source; a
        failing callback reads as 0 rather than breaking a scrape)."""
        if self.fn is not None:
            try:
                return self.fn()
            except Exception:
                return 0
        with self._lock:
            return self._value

    def snapshot(self):
        """JSON-ready value."""
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``observe`` locates the bucket by binary search over the sorted
    bounds (the old linear scan was O(buckets) on every request);
    ``record`` is kept as an alias for the previous
    ``LatencyHistogram.record`` API.
    """

    kind = "histogram"

    def __init__(self, name: str = "", help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds: List[float] = sorted(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Account one observation."""
        # first bound >= value, i.e. the old "value <= bound" scan
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += value
            if value > self.max:
                self.max = value

    #: Back-compat spelling (the old ``LatencyHistogram.record``).
    record = observe

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bound of the covering bucket)."""
        with self._lock:
            if self.total == 0:
                return 0.0
            target = q * self.total
            seen = 0
            for i, count in enumerate(self.counts):
                seen += count
                if seen >= target:
                    return (self.bounds[i] if i < len(self.bounds)
                            else self.max)
            return self.max

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.bounds, self.counts):
                running += count
                out.append((bound, running))
            out.append((float("inf"), self.total))
        return out

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view: cumulative bucket counts plus summaries."""
        buckets = {
            ("+Inf" if bound == float("inf") else f"{bound:g}"): count
            for bound, count in self.cumulative_buckets()
        }
        with self._lock:
            mean = self.sum / self.total if self.total else 0.0
            total, maximum, summed = self.total, self.max, self.sum
        return {
            "count": total,
            "sum": summed,
            "mean": mean,
            "max": maximum,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "instruments")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.instruments: "OrderedDict[LabelSet, Any]" = OrderedDict()


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class MetricsRegistry:
    """Get-or-create store of metric families, in registration order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "OrderedDict[str, _Family]" = OrderedDict()

    def _instrument(self, name: str, kind: str, help: str,
                    labels: Optional[Dict[str, str]],
                    factory: Callable[[], Any]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}")
            instrument = family.instruments.get(key)
            if instrument is None:
                instrument = factory()
                family.instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        """Get or create a counter."""
        return self._instrument(
            name, "counter", help, labels,
            lambda: Counter(name, help, labels))

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create a gauge (optionally callback-backed)."""
        gauge = self._instrument(
            name, "gauge", help, labels,
            lambda: Gauge(name, help, labels, fn=fn))
        if fn is not None and gauge.fn is None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        """Get or create a histogram."""
        return self._instrument(
            name, "histogram", help, labels,
            lambda: Histogram(name, help, labels, buckets=buckets))

    def collect(self) -> List[Dict[str, Any]]:
        """Families with their per-label-set instruments, stable order."""
        with self._lock:
            families = [(f.name, f.kind, f.help, list(f.instruments.items()))
                        for f in self._families.values()]
        out = []
        for name, kind, help, instruments in families:
            out.append({
                "name": name,
                "kind": kind,
                "help": help,
                "samples": [
                    {"labels": dict(labelset), "value": inst.snapshot()}
                    for labelset, inst in instruments
                ],
            })
        return out

    def snapshot(self) -> Dict[str, Any]:
        """One JSON document of every family (the JSON renderer)."""
        return {family["name"]: {
            "kind": family["kind"],
            "help": family["help"],
            "samples": family["samples"],
        } for family in self.collect()}


# --------------------------------------------------------------------------
# Renderers
# --------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"'
                    for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The Prometheus text exposition format of a registry."""
    lines: List[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                snap = sample["value"]
                for bound, count in snap["buckets"].items():
                    bucket_labels = dict(labels, le=bound)
                    lines.append(f"{name}_bucket{_labels_text(bucket_labels)}"
                                 f" {count}")
                lines.append(f"{name}_sum{_labels_text(labels)}"
                             f" {_fmt(snap['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)}"
                             f" {snap['count']}")
            else:
                lines.append(f"{name}{_labels_text(labels)}"
                             f" {_fmt(sample['value'])}")
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """The JSON rendering of a registry (``snapshot`` by another name)."""
    return registry.snapshot()


# --------------------------------------------------------------------------
# A small text-format parser (tests + the smoke harness use it to check
# that what we expose is really scrapeable)
# --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{([^{}]*)\})?"
    r"\s+(\S+)(?:\s+\d+)?$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{"name{labels}": value}``.

    Strict enough to catch malformed output: every non-comment line must
    be a well-formed sample with a float-parseable value, label bodies
    must be ``key="value"`` lists, and ``# TYPE`` lines must name a known
    type.  Raises :class:`ValueError` on the first violation.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name, label_body, raw_value = match.groups()
        labels: Dict[str, str] = {}
        if label_body:
            consumed = 0
            for pair in _LABEL_RE.finditer(label_body):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            remainder = label_body[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"line {lineno}: bad label body {label_body!r}")
        if raw_value == "+Inf":
            value = float("inf")
        elif raw_value == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value {raw_value!r}"
                ) from None
        key = name + _labels_text(labels)
        samples[key] = value
    return samples
