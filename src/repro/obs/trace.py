"""Hierarchical tracing spans for the whole engine.

One :class:`Tracer` (usually the module-level singleton, reachable via
:func:`tracer` / :func:`span`) hands out :class:`Span` objects that form
a tree: the current span is tracked in a :mod:`contextvars` variable, so
``with span("match.refine"):`` nests under whatever span is active on
the same thread, and concurrent requests on different worker threads
never interleave their trees.

Design constraints, in order:

1. **Disabled-mode overhead must be negligible.**  When the tracer is
   off, :meth:`Tracer.span` returns the shared :data:`NOOP_SPAN`
   singleton — no allocation, no context-variable write, and every
   method on it is a one-line no-op.  Instrumented code therefore never
   guards its ``with span(...)`` blocks.
2. **Cross-thread request trees.**  A service request is admitted on the
   caller's thread but executed on a pool worker.  The service creates
   the root explicitly with :meth:`Tracer.start` and adopts it on the
   worker via :meth:`Tracer.activate`, so matcher spans nest under the
   request that caused them.
3. **Offline reconstruction.**  A :class:`JsonlSink` appends one JSON
   line per finished span (trace/span/parent ids, monotonic start,
   duration, tags, counters); :func:`read_trace` + :func:`span_tree`
   rebuild the tree from the file alone.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "JsonlSink",
    "SpanCollector",
    "tracer",
    "span",
    "current_span",
    "enable_tracing",
    "disable_tracing",
    "read_trace",
    "span_tree",
    "find_spans",
]

# span/trace ids must stay unique across *processes*, not just threads:
# a cluster fan-out stitches the coordinator's JSONL trace together with
# each shard server's via the ids sent over the wire, so two processes
# must never mint the same id.  Each process draws from its own
# pid-prefixed range (ids stay < 2**60, safely inside JSON's exact-int
# window).  Forked pool workers would inherit the parent's range, but
# they never enable tracing, so no collision can be emitted.
_ids = itertools.count(((os.getpid() & 0xFFFFF) << 40) | 1)

#: The active span of the current thread/context (None at top level).
_current: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    enabled = False
    name = ""
    tags: Dict[str, Any] = {}
    counters: Dict[str, float] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **tags) -> None:
        """No-op."""

    def incr(self, counter: str, n: float = 1) -> None:
        """No-op."""

    def finish(self) -> None:
        """No-op."""

    def __repr__(self) -> str:
        return "<noop span>"


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed node of a trace tree.

    Timings use :func:`time.perf_counter` (monotonic); ``wall`` records
    the wall-clock start so offline traces can be ordered against logs.
    ``tags`` are small key/value annotations, ``counters`` accumulate
    numeric facts (results found, bytes written, ...).
    """

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "tags", "counters", "started", "wall", "duration",
                 "root", "tree_times", "_tree_lock", "_token", "_finished")

    enabled = True

    def __init__(self, owner: "Tracer", name: str, trace_id: int,
                 parent: Optional["Span"] = None,
                 tags: Optional[Dict[str, Any]] = None) -> None:
        self.tracer = owner
        self.name = name
        self.trace_id = trace_id
        self.span_id = next(_ids)
        self.parent_id = parent.span_id if parent is not None else None
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.counters: Dict[str, float] = {}
        self.started = time.perf_counter()
        self.wall = time.time()
        self.duration: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self._finished = False
        if parent is None:
            # a root: it aggregates per-name totals of its whole subtree
            # (the slow-query log's "top spans" view)
            self.root: "Span" = self
            self.tree_times: Optional[Dict[str, List[float]]] = {}
            self._tree_lock: Optional[threading.Lock] = threading.Lock()
        else:
            self.root = parent.root
            self.tree_times = None
            self._tree_lock = None

    # -- annotations ----------------------------------------------------------

    def annotate(self, **tags) -> None:
        """Attach/overwrite tag values."""
        self.tags.update(tags)

    def incr(self, counter: str, n: float = 1) -> None:
        """Bump a numeric counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    # -- lifecycle ------------------------------------------------------------

    def finish(self) -> None:
        """Stop the clock, fold into the root's totals, emit to sinks.

        Idempotent; ``with`` blocks call it automatically on exit.
        """
        if self._finished:
            return
        self._finished = True
        self.duration = time.perf_counter() - self.started
        root = self.root
        if root.tree_times is not None and root._tree_lock is not None:
            with root._tree_lock:
                entry = root.tree_times.setdefault(self.name, [0.0, 0])
                entry[0] += self.duration
                entry[1] += 1
        self.tracer._emit(self)

    def top_spans(self, limit: int = 8) -> Dict[str, Dict[str, float]]:
        """Per-name (total seconds, count) aggregates of this root's tree,
        heaviest first.  Empty for non-root spans."""
        if self.tree_times is None or self._tree_lock is None:
            return {}
        with self._tree_lock:
            items = sorted(self.tree_times.items(),
                           key=lambda kv: kv[1][0], reverse=True)
        return {name: {"total": total, "count": count}
                for name, (total, count) in items[:limit]}

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None and "error" not in self.tags:
            self.tags["error"] = f"{exc_type.__name__}: {exc}"
        self.finish()
        return False

    def record(self) -> Dict[str, Any]:
        """The JSON-ready form a :class:`JsonlSink` writes."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.started,
            "wall": self.wall,
            "duration": self.duration,
            "tags": self.tags,
            "counters": self.counters,
        }

    def __repr__(self) -> str:
        state = (f"{self.duration * 1000:.2f}ms"
                 if self.duration is not None else "open")
        return f"<span {self.name} #{self.span_id} {state}>"


class Tracer:
    """Hands out spans and fans finished ones out to sinks."""

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: List[Callable[[Span], None]] = []

    # -- configuration --------------------------------------------------------

    def enable(self, sink: Optional[Callable[[Span], None]] = None) -> None:
        """Turn tracing on, optionally adding a sink for finished spans."""
        if sink is not None:
            self._sinks.append(sink)
        self.enabled = True

    def disable(self) -> None:
        """Turn tracing off and drop every sink."""
        self.enabled = False
        self._sinks = []

    @contextmanager
    def session(self, sink: Callable[[Span], None]) -> Iterator[None]:
        """Tracing enabled with *sink* for the duration of a block; the
        previous enabled/sink state is restored afterwards."""
        previous_enabled = self.enabled
        previous_sinks = list(self._sinks)
        self._sinks = previous_sinks + [sink]
        self.enabled = True
        try:
            yield
        finally:
            self.enabled = previous_enabled
            self._sinks = previous_sinks

    # -- span creation --------------------------------------------------------

    def span(self, name: str, **tags):
        """A child of the current span (or a new root), as a context
        manager.  Returns :data:`NOOP_SPAN` while disabled."""
        if not self.enabled:
            return NOOP_SPAN
        parent = _current.get()
        trace_id = parent.trace_id if parent is not None else next(_ids)
        return Span(self, name, trace_id, parent=parent, tags=tags)

    def start(self, name: str, parent: Optional[Span] = None,
              remote: Optional[Tuple[int, int]] = None, **tags):
        """An explicitly managed span (no context-variable side effects).

        For roots that outlive the creating frame — e.g. a service
        request admitted on one thread and finished on another.  The
        caller owns :meth:`Span.finish`.

        ``remote`` is a ``(trace_id, parent_span_id)`` pair received
        over the wire (see ``repro.service.protocol``): the new span is
        a *local* root (it aggregates its subtree's totals) but joins
        the caller's distributed trace — offline, :func:`span_tree` over
        the merged JSONL files nests it under the remote parent.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is not None and not parent.enabled:
            parent = None
        trace_id = parent.trace_id if parent is not None else next(_ids)
        started = Span(self, name, trace_id, parent=parent, tags=tags)
        if parent is None and remote is not None:
            remote_trace, remote_parent = remote
            started.trace_id = int(remote_trace)
            started.parent_id = int(remote_parent)
        return started

    @contextmanager
    def activate(self, target) -> Iterator[Any]:
        """Adopt *target* as the current span for a block (worker threads
        re-parenting their work under a cross-thread root)."""
        if target is None or not getattr(target, "enabled", False):
            yield target
            return
        token = _current.set(target)
        try:
            yield target
        finally:
            _current.reset(token)

    def current(self) -> Optional[Span]:
        """The active span of this thread/context, or None."""
        return _current.get()

    # -- emission -------------------------------------------------------------

    def _emit(self, finished: Span) -> None:
        for sink in self._sinks:
            try:
                sink(finished)
            except Exception:  # a broken sink must never break the query
                pass


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, **tags):
    """``tracer().span(...)`` — the one-liner instrumented code uses."""
    return _TRACER.span(name, **tags)


def current_span():
    """The active span (or :data:`NOOP_SPAN`), never None."""
    active = _TRACER.current()
    return active if active is not None else NOOP_SPAN


def enable_tracing(sink: Optional[Callable[[Span], None]] = None) -> None:
    """Enable the process-wide tracer."""
    _TRACER.enable(sink)


def disable_tracing() -> None:
    """Disable the process-wide tracer and drop its sinks."""
    _TRACER.disable()


# --------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------


class JsonlSink:
    """Appends one JSON line per finished span (the ``--trace-out`` file).

    Lines are flushed as written so a killed process still leaves a
    reconstructible trace of everything that finished.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def __call__(self, finished: Span) -> None:
        line = json.dumps(finished.record(), sort_keys=True, default=str)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if not self._file.closed:
                self._file.close()


class SpanCollector:
    """Collects finished spans in memory (tests and benchmarks)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._lock = threading.Lock()

    def __call__(self, finished: Span) -> None:
        with self._lock:
            self.spans.append(finished)

    def by_name(self, name: str) -> List[Span]:
        """Finished spans with the given name."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def totals(self) -> Dict[str, float]:
        """Summed durations per span name."""
        out: Dict[str, float] = {}
        with self._lock:
            for finished in self.spans:
                if finished.duration is not None:
                    out[finished.name] = (out.get(finished.name, 0.0)
                                          + finished.duration)
        return out


# --------------------------------------------------------------------------
# Offline reconstruction
# --------------------------------------------------------------------------


def read_trace(path) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into span records."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def span_tree(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest span records into trees (a ``children`` list per record).

    Returns the roots, ordered by start time.  Records are copied, so
    the input list is left untouched.
    """
    by_id = {r["span"]: dict(r, children=[]) for r in records}
    roots: List[Dict[str, Any]] = []
    for record in by_id.values():
        parent = record.get("parent")
        if parent is not None and parent in by_id:
            by_id[parent]["children"].append(record)
        else:
            roots.append(record)
    for record in by_id.values():
        record["children"].sort(key=lambda r: r["start"])
    roots.sort(key=lambda r: r["start"])
    return roots


def find_spans(tree: List[Dict[str, Any]], name: str) -> List[Dict[str, Any]]:
    """Every record named *name* anywhere in a :func:`span_tree` forest."""
    found: List[Dict[str, Any]] = []
    stack = list(tree)
    while stack:
        record = stack.pop()
        if record["name"] == name:
            found.append(record)
        stack.extend(record["children"])
    return found
