"""EXPLAIN / EXPLAIN ANALYZE for the access-method pipeline.

Renders what the planner will do with a pattern — per-node retrieval
method (attribute index / label hashtable / scan), estimated vs. actual
feasible-mate, pruned and refined candidate counts, the chosen search
order and its cost-model estimates — and, with ``analyze=True``, runs
the query for real and attaches per-phase timings, search counters and
the structured outcome.

This module sits *above* the matcher (it imports ``repro.matching``), so
it is deliberately **not** re-exported from ``repro.obs.__init__`` —
importing the tracing/metrics core must never drag the matcher in.
Consumers (CLI, service) import it directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.pattern import GraphPattern, GroundPattern
from ..matching.feasible_mates import RetrievalStats, retrieve_feasible_mates
from ..matching.planner import GraphMatcher, MatchOptions
from ..matching.refinement import refine_search_space, space_size
from ..matching.search_order import (
    CostModel,
    connected_order,
    greedy_order,
    order_cost,
)
from ..runtime import ExecutionContext

__all__ = ["explain_ground", "explain_document", "render_text"]


def _estimated_mates(matcher: GraphMatcher, ground: GroundPattern,
                     name: str, label_attr: str) -> int:
    """The statistics-based candidate estimate for one pattern node.

    Labelled nodes estimate by label frequency (what the cost model
    uses); unlabelled nodes fall back to the whole node count.
    """
    label = ground.motif.node(name).attrs.get(label_attr)
    if label is not None and matcher.stats is not None:
        return matcher.stats.node_frequency(label)
    return matcher.graph.num_nodes()


def explain_ground(
    matcher: GraphMatcher,
    ground: GroundPattern,
    options: Optional[MatchOptions] = None,
    analyze: bool = False,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, Any]:
    """The access plan of one ground pattern on one graph, as a dict.

    Always runs retrieval + pruning + refinement + ordering (cheap, no
    search) to report *actual* candidate counts next to the statistics
    *estimates*; with ``analyze=True`` additionally runs the full
    pipeline (search included) under *context* and attaches timings,
    search counters, degradation notes and the outcome.
    """
    opts = options or MatchOptions(compute_baseline=False)
    matcher.refresh()
    graph = matcher.graph
    retrieval = RetrievalStats()
    local = opts.local if opts.local != "none" else "none"
    space = retrieve_feasible_mates(
        ground, graph,
        attribute_index=(matcher.attribute_index
                         if opts.use_attribute_index else None),
        profile_index=matcher.profile_index,
        local=local, radius=opts.radius,
        label_attr=opts.label_attr, stats=retrieval,
    )
    retrieved_space = space_size(space)
    refine_error: Optional[str] = None
    refined = space
    if opts.refine:
        try:
            refined = refine_search_space(
                ground.motif, graph, space, level=opts.refine_level)
        except Exception as exc:
            refine_error = str(exc)
            refined = space

    sizes = {name: len(candidates) for name, candidates in refined.items()}
    model = CostModel(
        ground.motif,
        stats=matcher.stats if opts.gamma_mode == "frequency" else None,
        gamma_const=opts.gamma_const,
        label_attr=opts.label_attr,
        directed=graph.directed,
    )
    if opts.plan_order is not None and set(opts.plan_order) == set(sizes):
        order, policy = list(opts.plan_order), "plan-cache"
    elif opts.optimize_order:
        order, policy = greedy_order(ground.motif, sizes, model), "greedy"
    else:
        order, policy = connected_order(ground.motif, sizes), "connected"
    cost, estimated_results = order_cost(order, sizes, model)

    nodes: List[Dict[str, Any]] = []
    for name in ground.node_names():
        nodes.append({
            "node": name,
            "label": ground.motif.node(name).attrs.get(opts.label_attr),
            "retrieval": retrieval.method.get(name, "scan"),
            "estimated_mates": _estimated_mates(matcher, ground, name,
                                                opts.label_attr),
            "scanned": retrieval.scanned.get(name, 0),
            "feasible_mates": retrieval.after_fu.get(name, 0),
            "after_pruning": retrieval.after_local.get(name, 0),
            "refined": len(refined.get(name, ())),
        })

    report: Dict[str, Any] = {
        "graph": graph.name or "<anon>",
        "pattern_nodes": len(nodes),
        "local": opts.local,
        "refine": bool(opts.refine) and refine_error is None,
        "order": list(order),
        "order_policy": policy,
        "estimated_cost": cost,
        "estimated_results": estimated_results,
        "spaces": {
            "retrieved": retrieved_space,
            "refined": space_size(refined),
        },
        "nodes": nodes,
    }
    if refine_error is not None:
        report["refine_error"] = refine_error
    if analyze:
        run = matcher.match(ground, opts, context=context)
        search = run.search
        report["actual"] = {
            "mappings": len(run.mappings),
            "outcome": run.outcome.to_dict(),
            "times": dict(run.times),
            "total_time": run.total_time,
            "order": list(run.order),
            "spaces": {
                "retrieved": run.retrieved_space,
                "refined": run.refined_space,
            },
            "search": ({
                "candidates_tried": search.candidates_tried,
                "check_calls": search.check_calls,
                "partial_states": search.partial_states,
                "results": search.results,
            } if search is not None else None),
            "degradation": list(run.degradation),
        }
    return report


def explain_document(
    database,
    document: str,
    pattern,
    options: Optional[MatchOptions] = None,
    analyze: bool = False,
    context: Optional[ExecutionContext] = None,
    grammar=None,
    max_depth: int = 8,
) -> Dict[str, Any]:
    """EXPLAIN a (possibly non-ground) pattern over every graph of a
    registered document; returns one JSON-ready dict."""
    grounds: List[GroundPattern]
    if isinstance(pattern, GraphPattern):
        grounds = list(pattern.ground(grammar, max_depth))
    else:
        grounds = [pattern]
    graphs: List[Dict[str, Any]] = []
    for graph in database.doc(document):
        matcher = database.matcher_for(graph)
        for ground in grounds:
            graphs.append(explain_ground(matcher, ground, options,
                                         analyze=analyze, context=context))
    return {
        "document": document,
        "analyze": bool(analyze),
        "derivations": len(grounds),
        "graphs": graphs,
    }


def render_text(document: Dict[str, Any]) -> str:
    """A readable rendering of :func:`explain_document` output."""
    lines: List[str] = []
    for diagnostic in document.get("diagnostics", []):
        where = ""
        if diagnostic.get("line"):
            where = f" (line {diagnostic['line']}, " \
                    f"column {diagnostic.get('column', 0)})"
        lines.append(
            f"diagnostic: {diagnostic.get('severity', '?')} "
            f"{diagnostic.get('code', '?')} "
            f"{diagnostic.get('message', '')}{where}")
    for entry in document.get("graphs", []):
        lines.append(f"graph {entry['graph']}: "
                     f"{entry['pattern_nodes']} pattern node(s), "
                     f"local={entry['local']}, "
                     f"refine={'on' if entry['refine'] else 'off'}")
        lines.append("  node          retrieval        est.  feasible  "
                     "pruned  refined")
        for node in entry["nodes"]:
            label = f" <{node['label']}>" if node["label"] else ""
            lines.append(
                f"  {node['node'] + label:<13} {node['retrieval']:<15} "
                f"{node['estimated_mates']:>5} {node['feasible_mates']:>9} "
                f"{node['after_pruning']:>7} {node['refined']:>8}")
        lines.append(
            f"  search order [{entry['order_policy']}]: "
            + " > ".join(entry["order"]))
        lines.append(
            f"  estimated cost {entry['estimated_cost']:.3g}, "
            f"estimated results {entry['estimated_results']:.3g}, "
            f"search space {entry['spaces']['refined']}")
        if entry.get("refine_error"):
            lines.append(f"  refinement failed: {entry['refine_error']}")
        actual = entry.get("actual")
        if actual:
            lines.append(
                f"  actual: {actual['mappings']} mapping(s) in "
                f"{actual['total_time'] * 1000:.1f} ms "
                f"[{actual['outcome'].get('status', '?')}]")
            times = actual.get("times", {})
            if times:
                lines.append("  phase timings: " + ", ".join(
                    f"{phase}={seconds * 1000:.1f}ms"
                    for phase, seconds in times.items()))
            search = actual.get("search")
            if search:
                lines.append(
                    f"  search counters: "
                    f"tried={search['candidates_tried']} "
                    f"checks={search['check_calls']} "
                    f"states={search['partial_states']} "
                    f"results={search['results']}")
            for note in actual.get("degradation", ()):
                lines.append(f"  degraded: {note}")
    return "\n".join(lines)
