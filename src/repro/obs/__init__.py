"""repro.obs — the shared observability subsystem.

Three independent cores, importable without dragging in the engine:

- :mod:`repro.obs.trace` — hierarchical spans with a zero-cost disabled
  path, a context-local current span, and a JSONL sink for offline
  reconstruction;
- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with Prometheus text and JSON renderers;
- :mod:`repro.obs.slowlog` — a keep-the-N-slowest request log.

:mod:`repro.obs.explain` (EXPLAIN/ANALYZE) and
:mod:`repro.obs.httpexport` (the scrape endpoint) import the matcher and
``http.server`` respectively, so they are *not* re-exported here —
import them directly where needed.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    render_json,
    render_prometheus,
)
from .slowlog import SlowQueryEntry, SlowQueryLog
from .trace import (
    NOOP_SPAN,
    JsonlSink,
    Span,
    SpanCollector,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    find_spans,
    read_trace,
    span,
    span_tree,
    tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "render_json",
    "render_prometheus",
    "SlowQueryEntry",
    "SlowQueryLog",
    "NOOP_SPAN",
    "JsonlSink",
    "Span",
    "SpanCollector",
    "Tracer",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "find_spans",
    "read_trace",
    "span",
    "span_tree",
    "tracer",
]
