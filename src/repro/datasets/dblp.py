"""A synthetic DBLP-like collection of paper graphs.

The paper's co-authorship example (Figs. 4.12, 4.13) runs over "a
collection of papers represented as small graphs": each paper graph has
one node per author (tag ``author``, attribute ``name``) plus graph-level
``title``/``year``/``booktitle`` attributes.  This generator produces such
a collection with a Zipf author-productivity distribution so authors
recur across papers — the property the co-authorship query exercises.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..utils.zipf import ZipfSampler

DEFAULT_VENUES = ("SIGMOD", "VLDB", "ICDE", "KDD", "WWW")


def author_pool(count: int) -> List[str]:
    """Synthetic author names ``Author000..``, most prolific first."""
    width = max(3, len(str(count - 1)))
    return [f"Author{i:0{width}d}" for i in range(count)]


def dblp_collection(
    num_papers: int = 200,
    num_authors: int = 80,
    max_authors_per_paper: int = 4,
    venues: Sequence[str] = DEFAULT_VENUES,
    year_range: tuple = (1995, 2008),
    seed: int = 42,
    name: str = "DBLP",
) -> GraphCollection:
    """Generate the paper collection.

    Every paper graph is edge-free (authors are related only through
    co-occurrence in the paper, exactly as in Fig. 4.7), carries tag
    ``inproceedings`` and has ``title``, ``year`` and ``booktitle``
    attributes at graph level.
    """
    rng = random.Random(seed)
    authors = author_pool(num_authors)
    sampler = ZipfSampler(num_authors, 1.0)
    collection = GraphCollection(name=name)
    for paper_id in range(num_papers):
        graph = Graph(f"paper{paper_id}")
        graph.tuple.set("title", f"Title{paper_id}")
        graph.tuple.set("year", rng.randint(*year_range))
        graph.tuple.set("booktitle", venues[rng.randrange(len(venues))])
        count = rng.randint(1, max_authors_per_paper)
        chosen: List[str] = []
        while len(chosen) < count:
            author = sampler.sample_label(rng, authors)
            if author not in chosen:
                chosen.append(author)
        for position, author in enumerate(chosen):
            graph.add_node(f"v{position + 1}", tag="author", name=author)
        collection.add(graph)
    return collection


def tiny_dblp() -> GraphCollection:
    """The exact two-graph DBLP collection of Fig. 4.13."""
    g1 = Graph("G1")
    g1.add_node("v1", tag="author", name="A")
    g1.add_node("v2", tag="author", name="B")
    g2 = Graph("G2")
    g2.add_node("v1", tag="author", name="C")
    g2.add_node("v2", tag="author", name="D")
    g2.add_node("v3", tag="author", name="A")
    for graph in (g1, g2):
        graph.tuple.set("booktitle", "SIGMOD")
    return GraphCollection([g1, g2], name="DBLP")
