"""Dataset generators standing in for the paper's real and synthetic data."""

from .dblp import author_pool, dblp_collection, tiny_dblp
from .molecules import (
    benzene_ring_pattern,
    molecule_collection,
    random_molecule,
    ring_with_side_chain_pattern,
)
from .ppi import go_term_labels, ppi_network, top_labels
from .queries import (
    clique_queries,
    clique_query,
    extract_connected_query,
    extracted_queries,
)
from .random_graphs import erdos_renyi_graph, label_universe

__all__ = [
    "author_pool",
    "dblp_collection",
    "tiny_dblp",
    "benzene_ring_pattern",
    "molecule_collection",
    "random_molecule",
    "ring_with_side_chain_pattern",
    "go_term_labels",
    "ppi_network",
    "top_labels",
    "clique_queries",
    "clique_query",
    "extract_connected_query",
    "extracted_queries",
    "erdos_renyi_graph",
    "label_universe",
]
