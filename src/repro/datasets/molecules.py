"""Synthetic chemical-compound collection (the intro's first example).

*"Find all heterocyclic chemical compounds that contain a given aromatic
ring and a side chain"* — the paper's category-1 workload: a large
collection of small graphs.  The generator produces compounds made of a
backbone ring (with occasional heteroatoms), side chains and bridges,
with atoms as nodes (``label`` = element symbol) and bonds as edges.
"""

from __future__ import annotations

import random
from typing import List

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..core.motif import SimpleMotif
from ..core.pattern import GroundPattern

ELEMENTS = ("C", "N", "O", "S", "P")
#: Carbon dominates organic molecules.
ELEMENT_WEIGHTS = (0.70, 0.12, 0.12, 0.04, 0.02)


def _pick_element(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for element, weight in zip(ELEMENTS, ELEMENT_WEIGHTS):
        cumulative += weight
        if roll < cumulative:
            return element
    return ELEMENTS[-1]


def random_molecule(
    rng: random.Random,
    name: str,
    ring_size_range=(5, 6),
    chain_length_range=(0, 4),
    num_chains_range=(0, 3),
) -> Graph:
    """One compound: a ring plus random side chains."""
    graph = Graph(name)
    graph.tuple.set("compound", name)
    ring_size = rng.randint(*ring_size_range)
    ring_nodes: List[str] = []
    for i in range(ring_size):
        node = graph.add_node(f"a{i}", label=_pick_element(rng))
        ring_nodes.append(node.id)
    for i in range(ring_size):
        graph.add_edge(ring_nodes[i], ring_nodes[(i + 1) % ring_size],
                       bond="aromatic")
    atom_counter = ring_size
    for _ in range(rng.randint(*num_chains_range)):
        anchor = ring_nodes[rng.randrange(ring_size)]
        previous = anchor
        for _ in range(rng.randint(*chain_length_range)):
            node = graph.add_node(f"a{atom_counter}",
                                  label=_pick_element(rng))
            atom_counter += 1
            graph.add_edge(previous, node.id,
                           bond="single" if rng.random() < 0.8 else "double")
            previous = node.id
    return graph


def molecule_collection(
    num_molecules: int = 500,
    seed: int = 13,
    name: str = "compounds",
) -> GraphCollection:
    """A collection of random small compounds."""
    rng = random.Random(seed)
    collection = GraphCollection(name=name)
    for index in range(num_molecules):
        collection.add(random_molecule(rng, f"mol{index}"))
    return collection


def benzene_ring_pattern() -> GroundPattern:
    """A six-carbon aromatic ring query."""
    motif = SimpleMotif()
    for i in range(6):
        motif.add_node(f"c{i}", attrs={"label": "C"})
    for i in range(6):
        motif.add_edge(f"c{i}", f"c{(i + 1) % 6}", name=f"b{i}",
                       attrs={"bond": "aromatic"})
    return GroundPattern(motif, name="benzene")


def ring_with_side_chain_pattern(chain: str = "O") -> GroundPattern:
    """The intro's query: an aromatic carbon pair with a side-chain atom."""
    motif = SimpleMotif()
    motif.add_node("r1", attrs={"label": "C"})
    motif.add_node("r2", attrs={"label": "C"})
    motif.add_node("s", attrs={"label": chain})
    motif.add_edge("r1", "r2", name="ring", attrs={"bond": "aromatic"})
    motif.add_edge("r1", "s", name="branch")
    return GroundPattern(motif, name="ring_with_chain")
