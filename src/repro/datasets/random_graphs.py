"""Synthetic Erdős–Rényi graphs with Zipf labels (Section 5.2).

*"generate n nodes, and then generate m edges by randomly choosing two end
nodes. Each node is assigned a label (100 distinct labels in total). The
distribution of the labels follows Zipf's law."*
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.graph import Graph
from ..utils.zipf import ZipfSampler


def label_universe(count: int, prefix: str = "L") -> List[str]:
    """Label names ``L000..`` ordered from most to least frequent."""
    width = max(3, len(str(count - 1)))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def erdos_renyi_graph(
    n: int,
    m: int,
    num_labels: int = 100,
    zipf_s: float = 1.0,
    seed: int = 0,
    name: Optional[str] = None,
    labels: Optional[Sequence[str]] = None,
    allow_self_loops: bool = False,
) -> Graph:
    """The paper's synthetic model: n nodes, m uniformly random edges.

    Parallel edges are rejected (the data model stores one edge per node
    pair); self loops are rejected by default.  Labels follow Zipf's law
    over *num_labels* distinct values.
    """
    if labels is None:
        labels = label_universe(num_labels)
    rng = random.Random(seed)
    sampler = ZipfSampler(len(labels), zipf_s)
    graph = Graph(name or f"er_{n}_{m}")
    node_ids = [f"v{i}" for i in range(n)]
    for node_id in node_ids:
        graph.add_node(node_id, label=sampler.sample_label(rng, labels))
    added = 0
    attempts = 0
    max_attempts = 50 * m + 1000
    while added < m and attempts < max_attempts:
        attempts += 1
        u = node_ids[rng.randrange(n)]
        v = node_ids[rng.randrange(n)]
        if u == v and not allow_self_loops:
            continue
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    if added < m:
        raise ValueError(
            f"could not place {m} distinct edges on {n} nodes "
            f"(placed {added})"
        )
    return graph
