"""A synthetic protein-interaction network standing in for the yeast data.

The paper's real dataset (Asthana et al. 2004) is a yeast PPI network of
3112 proteins and 12519 interactions, labeled with 183 high-level Gene
Ontology terms (Section 5.1).  We cannot ship the original data, so this
generator produces a network matched on the properties the experiments
depend on:

* node and edge counts (defaults equal the paper's);
* a heavy-tailed degree distribution (preferential attachment, as real
  PPI networks exhibit);
* a skewed label distribution over 183 "GO term" labels (Zipf-like, so a
  "top 40 most frequent labels" query workload behaves as in the paper).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.graph import Graph
from ..utils.zipf import ZipfSampler
from .random_graphs import label_universe


def go_term_labels(count: int = 183) -> List[str]:
    """Synthetic GO-term label names, most frequent first."""
    return label_universe(count, prefix="GO:")


def ppi_network(
    n: int = 3112,
    m: int = 12519,
    num_labels: int = 183,
    zipf_s: float = 0.8,
    seed: int = 7,
    name: str = "yeast_ppi",
    num_complexes: Optional[int] = None,
    max_complex_size: int = 7,
    complex_label_correlation: float = 0.5,
) -> Graph:
    """Generate the PPI stand-in network.

    Structure comes from two biologically-motivated mechanisms:

    * **protein complexes** — densely connected groups (planted cliques of
      3..max_complex_size proteins), the source of the clique motifs the
      paper's clique-query workload finds (their yeast network contains
      cliques up to size 7).  With probability
      *complex_label_correlation* a complex is functionally homogeneous:
      all members share one GO label, as co-complex proteins typically
      share high-level function.  This gives frequent-label clique
      queries many answers (the paper's "high hits" group).
    * **preferential attachment** for the remaining interactions, giving
      the heavy-tailed degree distribution of real interactomes.

    Each node carries a ``label`` (synthetic GO term, Zipf-skewed) and a
    ``protein`` name.
    """
    if n < 3:
        raise ValueError("need at least 3 proteins")
    rng = random.Random(seed)
    labels = go_term_labels(num_labels)
    sampler = ZipfSampler(num_labels, zipf_s)
    graph = Graph(name)
    node_ids = [f"p{i}" for i in range(n)]
    for i, node_id in enumerate(node_ids):
        graph.add_node(
            node_id,
            tag="protein",
            label=sampler.sample_label(rng, labels),
            protein=f"Y{i:05d}",
        )
    added = 0
    # 1. protein complexes (planted near-cliques)
    if num_complexes is None:
        num_complexes = max(1, n // 20)
    complex_budget = m // 3
    for _ in range(num_complexes):
        if added >= complex_budget:
            break
        size = rng.randint(3, max_complex_size)
        members = rng.sample(node_ids, size)
        if rng.random() < complex_label_correlation:
            shared = sampler.sample_label(rng, labels)
            for member in members:
                graph.node(member).tuple.set("label", shared)
        for i in range(size):
            for j in range(i + 1, size):
                if not graph.has_edge(members[i], members[j]):
                    graph.add_edge(members[i], members[j])
                    added += 1
    # 2. preferential attachment for the rest
    endpoint_pool: List[str] = []
    for edge in graph.edges():
        endpoint_pool += [edge.source, edge.target]
    if not endpoint_pool:
        graph.add_edge(node_ids[0], node_ids[1])
        endpoint_pool += [node_ids[0], node_ids[1]]
        added += 1
    attempts = 0
    max_attempts = 100 * m
    while added < m and attempts < max_attempts:
        attempts += 1
        # one endpoint uniform (keeps the graph connected-ish), one
        # preferential (creates hubs)
        u = node_ids[rng.randrange(n)]
        if endpoint_pool and rng.random() < 0.7:
            v = endpoint_pool[rng.randrange(len(endpoint_pool))]
        else:
            v = node_ids[rng.randrange(n)]
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        endpoint_pool += [u, v]
        added += 1
    if added < m:
        raise ValueError(f"could not place {m} interactions (placed {added})")
    return graph


def top_labels(graph: Graph, k: int = 40, attr: str = "label") -> List[str]:
    """The k most frequent node labels (the clique-query label pool)."""
    from collections import Counter

    counts = Counter(node.get(attr) for node in graph.nodes())
    return [label for label, _ in counts.most_common(k)]
