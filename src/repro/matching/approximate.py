"""Approximate graph pattern matching (edge-tolerant).

Section 1.1 defines graph queries as retrieving graphs *"which contain
(or are similar to) the query pattern"*.  Exact containment is the
selection operator; this module covers the similarity side with the
standard edge-miss relaxation: a mapping is accepted when at most
``max_missing_edges`` pattern edges have no matching data edge (node
constraints stay exact, as in substructure-similarity search on
compounds and complexes).

The search extends Algorithm 4.1's ``Check`` with a miss budget; results
are ranked by the number of matched edges (descending).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.bindings import Mapping
from ..core.graph import Graph
from ..core.pattern import GroundPattern
from .basic import scan_feasible_mates


class ApproximateMatch:
    """A mapping plus its similarity accounting."""

    __slots__ = ("mapping", "missing_edges", "matched_edges")

    def __init__(self, mapping: Mapping, missing_edges: List[str],
                 matched_edges: int) -> None:
        self.mapping = mapping
        self.missing_edges = missing_edges
        self.matched_edges = matched_edges

    @property
    def similarity(self) -> float:
        """Matched fraction of pattern edges (1.0 = exact)."""
        total = self.matched_edges + len(self.missing_edges)
        return self.matched_edges / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"ApproximateMatch({self.mapping!r}, "
            f"missing={len(self.missing_edges)})"
        )


def find_approximate_matches(
    pattern: GroundPattern,
    graph: Graph,
    max_missing_edges: int = 1,
    candidates: Optional[Dict[str, Sequence[str]]] = None,
    limit: Optional[int] = None,
) -> List[ApproximateMatch]:
    """Mappings violating at most *max_missing_edges* pattern edges.

    Node predicates (F_u) remain exact; each pattern edge either maps to
    a data edge satisfying F_e or consumes one unit of the miss budget.
    The graph-wide predicate is enforced exactly.  Results are sorted by
    missing-edge count (exact matches first); mappings identical on nodes
    are reported once with their best (fewest-miss) accounting.
    """
    if candidates is None:
        candidates = scan_feasible_mates(pattern, graph)
    motif = pattern.motif
    order = pattern.node_names()
    directed = graph.directed
    results: Dict[frozenset, ApproximateMatch] = {}

    mapping = Mapping()
    used: set = set()
    missing: List[str] = []

    def check(u: str, v: str) -> Optional[List[str]]:
        """Newly-missing pattern edges when u -> v; None = over budget."""
        newly_missing: List[str] = []
        for edge in motif.incident_edges(u):
            other = edge.target if edge.source == u else edge.source
            if other == u:
                data_edge = graph.edge_between(v, v)
                ok = data_edge is not None and pattern.edge_matches(
                    edge.name, data_edge
                )
            elif other in mapping.nodes:
                w = mapping.nodes[other]
                if directed:
                    src = v if edge.source == u else w
                    dst = w if edge.source == u else v
                    data_edge = graph.edge_between(src, dst)
                    ok = (data_edge is not None
                          and data_edge.source == src
                          and pattern.edge_matches(edge.name, data_edge))
                else:
                    data_edge = graph.edge_between(v, w)
                    ok = data_edge is not None and pattern.edge_matches(
                        edge.name, data_edge
                    )
            else:
                continue
            if not ok:
                newly_missing.append(edge.name)
        if len(missing) + len(newly_missing) > max_missing_edges:
            return None
        return newly_missing

    def record() -> None:
        if not pattern.residual_holds(mapping, graph):
            return
        key = frozenset(mapping.nodes.items())
        existing = results.get(key)
        matched = motif.num_edges() - len(missing)
        if existing is None or len(missing) < len(existing.missing_edges):
            results[key] = ApproximateMatch(
                mapping.copy(), list(missing), matched
            )

    def search(index: int) -> bool:
        if index == len(order):
            record()
            return limit is not None and len(results) >= limit
        u = order[index]
        for v in candidates.get(u, ()):
            if v in used:
                continue
            newly_missing = check(u, v)
            if newly_missing is None:
                continue
            mapping.nodes[u] = v
            used.add(v)
            missing.extend(newly_missing)
            stop = search(index + 1)
            del mapping.nodes[u]
            used.discard(v)
            del missing[len(missing) - len(newly_missing):]
            if stop:
                return True
        return False

    search(0)
    ranked = sorted(results.values(),
                    key=lambda m: (len(m.missing_edges), repr(m.mapping)))
    return ranked if limit is None else ranked[:limit]
