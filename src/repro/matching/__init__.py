"""Access methods for the selection operator (Section 4 of the paper)."""

from .approximate import ApproximateMatch, find_approximate_matches
from .isomorphism import deduplicate_isomorphic, isomorphic, isomorphism_mapping
from .basic import (
    SearchCounters,
    brute_force_matches,
    find_matches,
    scan_feasible_mates,
)
from .bipartite import has_semi_perfect_matching, hopcroft_karp
from .feasible_mates import (
    LOCAL_STRATEGIES,
    RetrievalStats,
    retrieve_feasible_mates,
)
from .neighborhood import (
    default_label,
    motif_profile,
    neighborhood_subgraph,
    neighborhood_subisomorphic,
    profile,
    profile_contained,
)
from .planner import (
    GraphMatcher,
    MatchOptions,
    MatchReport,
    baseline_options,
    optimized_options,
)
from .reachability import ReachabilityIndex, match_path_pattern
from .refinement import (
    RefinementStats,
    refine_search_space,
    space_reduction_ratio,
    space_size,
)
from .search_order import (
    CostModel,
    connected_order,
    exhaustive_order,
    greedy_order,
    order_cost,
)
from .statistics import GraphStatistics

__all__ = [
    "ApproximateMatch",
    "find_approximate_matches",
    "deduplicate_isomorphic",
    "isomorphic",
    "isomorphism_mapping",
    "SearchCounters",
    "brute_force_matches",
    "find_matches",
    "scan_feasible_mates",
    "has_semi_perfect_matching",
    "hopcroft_karp",
    "LOCAL_STRATEGIES",
    "RetrievalStats",
    "retrieve_feasible_mates",
    "default_label",
    "motif_profile",
    "neighborhood_subgraph",
    "neighborhood_subisomorphic",
    "profile",
    "profile_contained",
    "GraphMatcher",
    "MatchOptions",
    "MatchReport",
    "baseline_options",
    "optimized_options",
    "ReachabilityIndex",
    "match_path_pattern",
    "RefinementStats",
    "refine_search_space",
    "space_reduction_ratio",
    "space_size",
    "CostModel",
    "connected_order",
    "exhaustive_order",
    "greedy_order",
    "order_cost",
    "GraphStatistics",
]
