"""Neighborhood subgraphs and profiles (Section 4.2).

Definition 4.10: the neighborhood subgraph of node ``v`` with radius ``r``
consists of all nodes within ``r`` hops of ``v`` and all edges between
them.  Node ``v`` is a feasible mate of pattern node ``u`` only if the
neighborhood subgraph of ``u`` is sub-isomorphic to that of ``v`` with
``u`` mapped to ``v``.

Profiles are the light-weight alternative: the lexicographically sorted
sequence of node labels in the neighborhood subgraph.  The pruning test is
then multiset containment ("a profile is a subsequence of the other"),
which is far cheaper than a subgraph-isomorphism test.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Callable, List, Optional, Tuple

from ..core.graph import Graph
from ..core.motif import SimpleMotif
from ..core.pattern import GroundPattern

#: Maps a node-like object to the label used in profiles.
LabelFn = Callable[[Any], Any]


def default_label(node: Any) -> Any:
    """The conventional label: the ``label`` attribute, else the tag."""
    label = node.get("label") if hasattr(node, "get") else None
    if label is None and getattr(node, "tag", None) is not None:
        return node.tag
    return label


def nodes_within_radius(graph: Graph, center: str, radius: int) -> List[str]:
    """Node ids within *radius* hops of *center* (BFS, includes center)."""
    seen = {center}
    frontier = deque([(center, 0)])
    out = [center]
    while frontier:
        node_id, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in graph.all_neighbors(node_id):
            if neighbor not in seen:
                seen.add(neighbor)
                out.append(neighbor)
                frontier.append((neighbor, dist + 1))
    return out


def neighborhood_subgraph(graph: Graph, center: str, radius: int) -> Graph:
    """The induced neighborhood subgraph of Definition 4.10."""
    return graph.induced_subgraph(nodes_within_radius(graph, center, radius))


def profile(
    graph: Graph,
    center: str,
    radius: int,
    label_fn: LabelFn = default_label,
) -> Tuple[Any, ...]:
    """The profile of a node: sorted labels of its neighborhood subgraph."""
    labels = [
        label_fn(graph.node(node_id))
        for node_id in nodes_within_radius(graph, center, radius)
    ]
    return tuple(sorted(labels, key=_sort_key))


def _sort_key(label: Any) -> Tuple[str, str]:
    # labels may mix None/str/int; sort stably by type name then repr
    return (type(label).__name__, str(label))


def profile_contained(
    pattern_profile: Tuple[Any, ...],
    data_profile: Tuple[Any, ...],
) -> bool:
    """Multiset containment: every pattern label is covered by the data."""
    need = Counter(pattern_profile)
    have = Counter(data_profile)
    return all(have[label] >= count for label, count in need.items())


# --------------------------------------------------------------------------
# Pattern-side neighborhoods
# --------------------------------------------------------------------------


def motif_nodes_within_radius(
    motif: SimpleMotif, center: str, radius: int
) -> List[str]:
    """BFS over motif structure (pattern-side counterpart)."""
    seen = {center}
    frontier = deque([(center, 0)])
    out = [center]
    while frontier:
        name, dist = frontier.popleft()
        if dist == radius:
            continue
        for neighbor in motif.neighbors(name):
            if neighbor not in seen:
                seen.add(neighbor)
                out.append(neighbor)
                frontier.append((neighbor, dist + 1))
    return out


def motif_profile(
    motif: SimpleMotif,
    center: str,
    radius: int,
    attr: str = "label",
) -> Tuple[Any, ...]:
    """Pattern-node profile: sorted required labels within the radius.

    Only nodes that *declare* a label constraint contribute; unconstrained
    pattern nodes impose nothing (they can match any label), keeping the
    pruning test sound.
    """
    labels = []
    for name in motif_nodes_within_radius(motif, center, radius):
        node = motif.node(name)
        if attr in node.attrs:
            labels.append(node.attrs[attr])
    return tuple(sorted(labels, key=_sort_key))


def motif_neighborhood(
    pattern: GroundPattern, center: str, radius: int
) -> GroundPattern:
    """The pattern restricted to the neighborhood of one of its nodes."""
    keep = set(motif_nodes_within_radius(pattern.motif, center, radius))
    sub = SimpleMotif()
    for name in pattern.motif.node_names():
        if name in keep:
            node = pattern.motif.node(name)
            sub.add_node(node.name, tag=node.tag, attrs=node.attrs,
                         predicate=node.predicate)
    for edge in pattern.motif.edges():
        if edge.source in keep and edge.target in keep:
            sub.add_edge(edge.source, edge.target, name=edge.name,
                         tag=edge.tag, attrs=edge.attrs, predicate=edge.predicate)
    return GroundPattern(sub, predicate=None, name=None)


def neighborhood_subisomorphic(
    pattern: GroundPattern,
    center: str,
    graph: Graph,
    candidate: str,
    radius: int,
    data_subgraph: Optional[Graph] = None,
) -> bool:
    """The exact local-pruning test of Section 4.2.

    Checks whether the neighborhood subgraph of pattern node *center* is
    sub-isomorphic to the neighborhood subgraph of data node *candidate*,
    with *center* mapped to *candidate*.  A precomputed *data_subgraph*
    (from a :class:`~repro.index.profile_index.ProfileIndex`) skips the
    extraction.
    """
    from .basic import find_matches  # local import avoids a cycle

    sub_pattern = motif_neighborhood(pattern, center, radius)
    sub_graph = (
        data_subgraph
        if data_subgraph is not None
        else neighborhood_subgraph(graph, candidate, radius)
    )
    matches = find_matches(
        sub_pattern,
        sub_graph,
        initial={center: candidate},
        exhaustive=False,
    )
    return bool(matches)
