"""Reachability queries: access methods for recursive path patterns.

Section 6.2: *"reachability queries correspond to recursive graph
patterns which are paths ... these techniques can be incorporated into
access methods for recursive graph pattern queries."*  This module is
that incorporation:

* :class:`ReachabilityIndex` answers ``reachable(u, v)`` in O(1) after
  preprocessing — strongly-connected components are condensed (Tarjan,
  iterative) and the condensation's transitive closure is computed with
  per-component bitsets in reverse topological order;
* :func:`match_path_pattern` answers the recursive ``Path`` pattern of
  Fig. 4.6(a) between two constrained end points without unrolling the
  recursion: source/target candidates come from feasible-mate retrieval
  and pairs are joined through the index.

For undirected graphs reachability degenerates to connected components.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.graph import Graph, Node


class ReachabilityIndex:
    """O(1) reachability over a (possibly cyclic) graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        if graph.directed:
            self._component = _tarjan_scc(graph)
            self._closure = _condensation_closure(graph, self._component)
        else:
            self._component = _connected_components(graph)
            self._closure = None  # same component <=> reachable

    def component_of(self, node_id: str) -> int:
        """The (strongly) connected component id of a node."""
        return self._component[node_id]

    def num_components(self) -> int:
        """Number of components."""
        return len(set(self._component.values()))

    def reachable(self, source: str, target: str) -> bool:
        """Whether a path source -> target exists (trivially true if equal)."""
        if source == target:
            return True
        source_comp = self._component[source]
        target_comp = self._component[target]
        if self._closure is None:
            return source_comp == target_comp
        if source_comp == target_comp:
            return True
        return bool(self._closure[source_comp] >> target_comp & 1)

    def reachable_pairs(
        self,
        sources: List[str],
        targets: List[str],
    ) -> Iterator[Tuple[str, str]]:
        """All (s, t) pairs with s != t and t reachable from s."""
        for source in sources:
            for target in targets:
                if source != target and self.reachable(source, target):
                    yield (source, target)


def _tarjan_scc(graph: Graph) -> Dict[str, int]:
    """Iterative Tarjan SCC; components numbered in reverse topological
    order (a component's number is higher than everything it reaches)."""
    index_counter = 0
    component_counter = 0
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    component: Dict[str, int] = {}

    for root in graph.node_ids():
        if root in indices:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(graph.neighbors(root)))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, neighbors = work[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in indices:
                    indices[neighbor] = lowlink[neighbor] = index_counter
                    index_counter += 1
                    stack.append(neighbor)
                    on_stack[neighbor] = True
                    work.append((neighbor, iter(graph.neighbors(neighbor))))
                    advanced = True
                    break
                if on_stack.get(neighbor):
                    lowlink[node] = min(lowlink[node], indices[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = component_counter
                    if member == node:
                        break
                component_counter += 1
    return component


def _condensation_closure(
    graph: Graph,
    component: Dict[str, int],
) -> Dict[int, int]:
    """Transitive closure of the SCC DAG as per-component bitsets.

    Tarjan numbers components in reverse topological order, so iterating
    components 0, 1, 2, ... visits every successor before its
    predecessors; each closure is the union of its direct successors'."""
    num_components = len(set(component.values()))
    successors: Dict[int, set] = {c: set() for c in range(num_components)}
    for edge in graph.edges():
        source_comp = component[edge.source]
        target_comp = component[edge.target]
        if source_comp != target_comp:
            successors[source_comp].add(target_comp)
    closure: Dict[int, int] = {}
    for comp in range(num_components):
        bits = 0
        for succ in successors[comp]:
            bits |= 1 << succ
            bits |= closure[succ]
        closure[comp] = bits
    return closure


def _connected_components(graph: Graph) -> Dict[str, int]:
    component: Dict[str, int] = {}
    counter = 0
    for root in graph.node_ids():
        if root in component:
            continue
        stack = [root]
        component[root] = counter
        while stack:
            node = stack.pop()
            for neighbor in graph.all_neighbors(node):
                if neighbor not in component:
                    component[neighbor] = counter
                    stack.append(neighbor)
        counter += 1
    return component


def match_path_pattern(
    graph: Graph,
    source_filter: Callable[[Node], bool],
    target_filter: Callable[[Node], bool],
    index: Optional[ReachabilityIndex] = None,
) -> List[Tuple[str, str]]:
    """Answer a recursive path pattern between two constrained end nodes.

    Equivalent to matching the ``Path`` grammar of Fig. 4.6(a) with node
    predicates on its exported ends at unbounded derivation depth — but
    computed through the reachability index instead of unrolling.
    Returns the (source id, target id) pairs.
    """
    if index is None:
        index = ReachabilityIndex(graph)
    sources = [n.id for n in graph.nodes() if source_filter(n)]
    targets = [n.id for n in graph.nodes() if target_filter(n)]
    return list(index.reachable_pairs(sources, targets))
