"""Local pruning and retrieval of feasible mates (Section 4.2).

Retrieval proceeds in two stages:

1. **Retrieve** candidates for each pattern node — by full scan, by the
   label hashtable, or by attribute B-trees (predicate pushdown), always
   followed by the exact F_u check so the result equals Definition 4.8.
2. **Prune locally** with neighborhood information: either the cheap
   profile subsequence test or the exact neighborhood-subgraph
   sub-isomorphism test (Definition 4.10).

Soundness: both pruning tests are necessary conditions of a full match,
so pruning never loses answers (verified by property tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.graph import Graph
from ..core.pattern import GroundPattern
from ..index.attribute_index import AttributeIndexSet
from ..index.profile_index import ProfileIndex
from .neighborhood import (
    motif_profile,
    neighborhood_subisomorphic,
    profile_contained,
)

#: Local pruning strategies, weakest to strongest.
LOCAL_STRATEGIES = ("none", "profile", "subgraph")


class RetrievalStats:
    """How candidates were obtained and how many each stage kept."""

    def __init__(self) -> None:
        self.scanned: Dict[str, int] = {}
        self.after_fu: Dict[str, int] = {}
        self.after_local: Dict[str, int] = {}
        self.used_index: Dict[str, bool] = {}
        #: per pattern node: "attribute-index" | "label-index" | "scan"
        self.method: Dict[str, str] = {}

    def __repr__(self) -> str:
        return (
            f"RetrievalStats(after_fu={self.after_fu}, "
            f"after_local={self.after_local})"
        )


def retrieve_feasible_mates(
    pattern: GroundPattern,
    graph: Graph,
    attribute_index: Optional[AttributeIndexSet] = None,
    profile_index: Optional[ProfileIndex] = None,
    local: str = "none",
    radius: int = 1,
    label_attr: str = "label",
    stats: Optional[RetrievalStats] = None,
) -> Dict[str, List[str]]:
    """The search space ``Phi`` after retrieval and local pruning.

    Parameters
    ----------
    attribute_index:
        Optional per-attribute B-trees; used to avoid full scans when the
        pattern node carries indexable constraints.
    profile_index:
        Precomputed profiles/neighborhood subgraphs; required for
        ``local != 'none'`` unless computed on the fly.
    local:
        One of :data:`LOCAL_STRATEGIES`.
    radius:
        Neighborhood radius (must equal the profile index's radius when
        one is supplied).
    """
    if local not in LOCAL_STRATEGIES:
        raise ValueError(f"unknown local strategy {local!r}")
    if profile_index is not None and profile_index.radius != radius:
        raise ValueError(
            f"profile index radius {profile_index.radius} != requested {radius}"
        )
    space: Dict[str, List[str]] = {}
    for name in pattern.node_names():
        motif_node = pattern.motif.node(name)
        candidate_ids: Optional[List[str]] = None
        if attribute_index is not None:
            pushed = pattern.decomposed.node_preds.get(name)
            preds = [p for p in (motif_node.predicate, pushed) if p is not None]
            from ..core.predicate import conjunction

            candidate_ids = attribute_index.candidates_for(
                motif_node.attrs, conjunction(preds)
            )
            if stats is not None:
                stats.used_index[name] = candidate_ids is not None
                if candidate_ids is not None:
                    stats.method[name] = "attribute-index"
        if candidate_ids is None and profile_index is not None:
            label = motif_node.attrs.get(label_attr)
            if label is not None:
                candidate_ids = profile_index.nodes_with_label(label)
                if stats is not None:
                    stats.used_index[name] = True
                    stats.method[name] = "label-index"
        if candidate_ids is None:
            candidate_ids = graph.node_ids()
            if stats is not None:
                stats.used_index[name] = False
                stats.method[name] = "scan"
        if stats is not None:
            stats.scanned[name] = len(candidate_ids)
        # exact F_u check (Definition 4.8)
        feasible = [
            node_id
            for node_id in candidate_ids
            if pattern.node_matches(name, graph.node(node_id))
        ]
        if stats is not None:
            stats.after_fu[name] = len(feasible)
        # local pruning
        if local == "profile":
            needed = motif_profile(pattern.motif, name, radius, attr=label_attr)
            if profile_index is not None:
                feasible = [
                    node_id
                    for node_id in feasible
                    if profile_contained(needed, profile_index.profile_of(node_id))
                ]
            else:
                from .neighborhood import profile as node_profile

                feasible = [
                    node_id
                    for node_id in feasible
                    if profile_contained(
                        needed, node_profile(graph, node_id, radius)
                    )
                ]
        elif local == "subgraph":
            feasible = [
                node_id
                for node_id in feasible
                if neighborhood_subisomorphic(
                    pattern, name, graph, node_id, radius,
                    data_subgraph=(
                        profile_index.subgraph_of(node_id)
                        if profile_index is not None
                        else None
                    ),
                )
            ]
        if stats is not None:
            stats.after_local[name] = len(feasible)
        space[name] = feasible
    return space
