"""Graph statistics for the cost model of Section 4.4.

The reduction factor of a join is estimated from edge probabilities::

    P(e(u, v)) = freq(e(u, v)) / (freq(u) * freq(v))

where ``freq`` counts occurrences by node label (and label pair for
edges) in the data graph.  These statistics are collected once per graph
and reused across queries, like relational catalog statistics.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Tuple

from ..core.graph import Graph
from .neighborhood import LabelFn, default_label


class GraphStatistics:
    """Label and label-pair frequencies of a data graph."""

    def __init__(self, graph: Graph, label_fn: LabelFn = default_label) -> None:
        self.num_nodes = graph.num_nodes()
        self.num_edges = graph.num_edges()
        self.label_fn = label_fn
        self.label_freq: Counter = Counter()
        self.pair_freq: Counter = Counter()
        labels: Dict[str, Any] = {}
        for node in graph.nodes():
            label = label_fn(node)
            labels[node.id] = label
            self.label_freq[label] += 1
        for edge in graph.edges():
            pair = self._pair_key(labels[edge.source], labels[edge.target],
                                  graph.directed)
            self.pair_freq[pair] += 1

    @staticmethod
    def _pair_key(label_a: Any, label_b: Any, directed: bool) -> Tuple[Any, Any]:
        if directed:
            return (label_a, label_b)
        key_a, key_b = sorted(
            (label_a, label_b), key=lambda x: (type(x).__name__, str(x))
        )
        return (key_a, key_b)

    def node_frequency(self, label: Any) -> int:
        """How many data nodes carry the label."""
        return self.label_freq.get(label, 0)

    def edge_frequency(self, label_a: Any, label_b: Any, directed: bool = False) -> int:
        """How many data edges join the two labels."""
        return self.pair_freq.get(self._pair_key(label_a, label_b, directed), 0)

    def edge_probability(
        self,
        label_a: Any,
        label_b: Any,
        directed: bool = False,
    ) -> float:
        """P(e(u, v)) conditioned on the end labels, with smoothing.

        Unlabeled pattern nodes (``label`` None on either side) fall back
        to the global edge density so the estimate stays usable for
        attribute-free patterns.
        """
        freq_a = self.node_frequency(label_a)
        freq_b = self.node_frequency(label_b)
        if label_a is None or label_b is None or freq_a == 0 or freq_b == 0:
            possible = max(1, self.num_nodes * (self.num_nodes - 1) / 2)
            return min(1.0, self.num_edges / possible)
        freq_edge = self.edge_frequency(label_a, label_b, directed)
        if freq_edge == 0:
            # unseen label pair: tiny non-zero probability keeps the cost
            # model ordering stable without claiming impossibility
            return 0.5 / (freq_a * freq_b)
        return min(1.0, freq_edge / (freq_a * freq_b))

    def __repr__(self) -> str:
        return (
            f"GraphStatistics(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={len(self.label_freq)})"
        )
