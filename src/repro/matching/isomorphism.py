"""Whole-graph isomorphism on top of the pattern matcher.

A monomorphism between equal-size graphs with equal edge counts is an
isomorphism, so Algorithm 4.1 doubles as an isomorphism tester once the
pattern constrains every compared attribute.  Used for value-based graph
deduplication (the id-based alternative is ``Graph.equals``).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from ..core.bindings import Mapping
from ..core.graph import Graph
from ..core.motif import SimpleMotif
from ..core.pattern import GroundPattern
from .basic import find_matches


def isomorphism_mapping(
    left: Graph,
    right: Graph,
    attrs: Sequence[str] = ("label",),
) -> Optional[Mapping]:
    """An isomorphism left → right respecting *attrs*, or ``None``.

    Cheap invariants (sizes, degree sequences, attribute multisets) are
    checked first; only then does the backtracking search run.
    """
    if left.directed != right.directed:
        return None
    if left.num_nodes() != right.num_nodes():
        return None
    if left.num_edges() != right.num_edges():
        return None
    if sorted(left.degree(n) for n in left.node_ids()) != sorted(
        right.degree(n) for n in right.node_ids()
    ):
        return None
    for attr in attrs:
        left_values = Counter(node.get(attr) for node in left.nodes())
        right_values = Counter(node.get(attr) for node in right.nodes())
        if left_values != right_values:
            return None
    pattern = GroundPattern(SimpleMotif.from_graph(left, constraint_attrs=attrs))
    matches = find_matches(pattern, right, exhaustive=False)
    if not matches:
        return None
    # equal node counts make the injective mapping bijective; equal edge
    # counts make the edge mapping surjective, hence an isomorphism
    return matches[0]


def isomorphic(
    left: Graph,
    right: Graph,
    attrs: Sequence[str] = ("label",),
) -> bool:
    """Whether the graphs are isomorphic respecting *attrs*."""
    return isomorphism_mapping(left, right, attrs) is not None


def deduplicate_isomorphic(graphs, attrs: Sequence[str] = ("label",)):
    """Keep one representative per isomorphism class (first occurrence)."""
    representatives = []
    for graph in graphs:
        if not any(isomorphic(graph, seen, attrs) for seen in representatives):
            representatives.append(graph)
    return representatives
