"""The selection-operator access-method pipeline (Sections 4.1–4.4).

:class:`GraphMatcher` composes the four stages the paper evaluates:

1. retrieval of feasible mates (scan / label hashtable / attribute B-tree);
2. local pruning by profiles or neighborhood subgraphs (Section 4.2);
3. joint reduction of the search space by pseudo-subgraph-isomorphism
   refinement (Section 4.3);
4. search-order optimization and the backtracking search (Sections 4.4,
   4.1).

Every stage records its timing and the search-space size it produced in a
:class:`MatchReport`, which is exactly what the paper's figures plot
(reduction ratios, per-step times, total times).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.bindings import Mapping
from ..core.graph import Graph
from ..core.pattern import GraphPattern, GroundPattern
from ..index.attribute_index import AttributeIndexSet
from ..index.profile_index import ProfileIndex
from ..obs.trace import span as trace_span
from ..runtime import (
    ExecutionContext,
    ExecutionInterrupted,
    QueryOutcome,
    current_outcome,
)
from .basic import SearchCounters, find_matches, scan_feasible_mates
from .feasible_mates import RetrievalStats, retrieve_feasible_mates
from .refinement import RefinementStats, refine_search_space, space_size
from .search_order import CostModel, connected_order, greedy_order
from .statistics import GraphStatistics

logger = logging.getLogger(__name__)


@dataclass
class MatchOptions:
    """Strategy flags for one matching run.

    The paper's "Optimized" configuration is the default: retrieval by
    profiles, refinement at level = query size, greedy optimized order.
    The "Baseline" configuration is
    ``MatchOptions(local="none", refine=False, optimize_order=False)``.
    """

    local: str = "profile"            # "none" | "profile" | "subgraph"
    refine: bool = True               # run Algorithm 4.2
    refine_level: Optional[int] = None  # None => pattern size
    optimize_order: bool = True       # greedy cost-based order vs connected order
    # a search order computed by an earlier run of the same query (the
    # service's plan cache replays it here); used only when it covers
    # exactly the pattern's nodes, otherwise recomputed
    plan_order: Optional[Sequence[str]] = None
    gamma_mode: str = "frequency"     # "frequency" | "constant"
    gamma_const: float = 0.1
    radius: int = 1
    exhaustive: bool = True
    limit: Optional[int] = None
    label_attr: str = "label"
    use_attribute_index: bool = True
    # measure the unpruned space for reduction ratios (benchmark
    # instrumentation; skip it in latency-sensitive production paths)
    compute_baseline: bool = True


@dataclass
class MatchReport:
    """Search-space sizes, per-step timings and results of one run.

    ``outcome`` records how the run ended (COMPLETE / TRUNCATED /
    TIMED_OUT / CANCELLED, with steps and elapsed time); ``mappings``
    holds whatever was found up to that point, so interrupted runs still
    carry their partial results.  ``degradation`` lists every fallback
    the planner took (missing/broken index, failed refinement, …) — an
    empty list means the full pipeline ran as configured.
    """

    baseline_space: int = 0
    retrieved_space: int = 0
    refined_space: int = 0
    times: Dict[str, float] = field(default_factory=dict)
    retrieval: Optional[RetrievalStats] = None
    refinement: Optional[RefinementStats] = None
    search: Optional[SearchCounters] = None
    order: List[str] = field(default_factory=list)
    mappings: List[Mapping] = field(default_factory=list)
    degradation: List[str] = field(default_factory=list)
    outcome: QueryOutcome = field(default_factory=QueryOutcome)

    @property
    def total_time(self) -> float:
        """Sum of all step times (seconds)."""
        return sum(self.times.values())

    def reduction_ratio(self, stage: str = "refined") -> float:
        """Search-space reduction ratio against the baseline space."""
        if self.baseline_space == 0:
            return 0.0
        size = self.refined_space if stage == "refined" else self.retrieved_space
        return size / self.baseline_space

    def stats_dict(self) -> Dict[str, object]:
        """JSON-ready per-stage statistics (counts, timings, order).

        This is what ``repro-gql match --json`` embeds per graph so
        scripts get the stage breakdown without re-running verbose.
        """
        retrieval = self.retrieval
        refinement = self.refinement
        search = self.search
        return {
            "times": dict(self.times),
            "total_time": self.total_time,
            "spaces": {
                "baseline": self.baseline_space,
                "retrieved": self.retrieved_space,
                "refined": self.refined_space,
            },
            "order": list(self.order),
            "retrieval": ({
                "scanned": dict(retrieval.scanned),
                "feasible_mates": dict(retrieval.after_fu),
                "after_pruning": dict(retrieval.after_local),
                "method": dict(retrieval.method),
            } if retrieval is not None else None),
            "refinement": ({
                "levels_run": refinement.levels_run,
                "pairs_checked": refinement.pairs_checked,
                "pairs_removed": refinement.pairs_removed,
            } if refinement is not None else None),
            "search": ({
                "candidates_tried": search.candidates_tried,
                "check_calls": search.check_calls,
                "partial_states": search.partial_states,
                "results": search.results,
            } if search is not None else None),
        }


class GraphMatcher:
    """Matches ground patterns against one data graph with shared indexes.

    Build one matcher per data graph; indexes and statistics are computed
    once and reused across queries, as a database system would.
    """

    def __init__(
        self,
        graph: Graph,
        radius: int = 1,
        build_attribute_index: bool = True,
        build_profile_index: bool = True,
        label_attr: str = "label",
    ) -> None:
        self.graph = graph
        self.label_attr = label_attr
        self._radius = radius
        self._build_attribute_index = build_attribute_index
        self._build_profile_index = build_profile_index
        self._rebuild()

    def _rebuild(self) -> None:
        # each auxiliary structure is optional: a build failure degrades
        # the pipeline (recorded in build_errors and on later reports)
        # instead of making the graph unqueryable
        self.build_errors: List[str] = []
        try:
            self.stats: Optional[GraphStatistics] = GraphStatistics(self.graph)
        except Exception as exc:
            self.stats = None
            self._note_build_error("graph statistics", exc)
        self.attribute_index: Optional[AttributeIndexSet] = None
        if self._build_attribute_index:
            try:
                self.attribute_index = AttributeIndexSet(self.graph)
            except Exception as exc:
                self._note_build_error("attribute index", exc)
        self.profile_index: Optional[ProfileIndex] = None
        if self._build_profile_index:
            try:
                self.profile_index = ProfileIndex(self.graph,
                                                  radius=self._radius)
            except Exception as exc:
                self._note_build_error("profile index", exc)
        self._built_version = self.graph.version

    def _note_build_error(self, what: str, exc: Exception) -> None:
        message = f"{what} build failed ({exc}); continuing without it"
        self.build_errors.append(message)
        logger.warning("%r: %s", self.graph, message)

    def refresh(self) -> bool:
        """Rebuild indexes/statistics if the graph mutated; returns whether
        a rebuild happened.  ``match`` calls this automatically, so
        queries never run against stale index structures."""
        if self.graph.version != self._built_version:
            self._rebuild()
            return True
        return False

    # -- the full pipeline -------------------------------------------------------

    def match(
        self,
        pattern: GroundPattern,
        options: Optional[MatchOptions] = None,
        context: Optional[ExecutionContext] = None,
    ) -> MatchReport:
        """Run the full access-method pipeline on one ground pattern.

        With a *context*, every stage is governed: deadline expiry, step
        budget exhaustion or cancellation stop the run, the interruption
        is recorded on the context, and the report carries a structured
        :class:`~repro.runtime.QueryOutcome` plus whatever mappings the
        search had produced.  Failures of auxiliary structures (indexes,
        statistics, refinement) never abort the query: the planner walks
        a degradation ladder — indexed retrieval, then on-the-fly local
        pruning, then the basic scan matcher — and records each step
        taken in ``report.degradation``.
        """
        opts = options or MatchOptions()
        report = MatchReport()
        with trace_span("match.query", graph=self.graph.name or "<anon>") as sp:
            try:
                self.refresh()
            except Exception as exc:
                self._degrade(report, f"index refresh failed ({exc}); "
                                      "matching with stale structures")
            for message in getattr(self, "build_errors", ()):
                report.degradation.append(message)
            try:
                self._match_pipeline(pattern, opts, report, context)
            except ExecutionInterrupted as exc:
                if context is None:
                    raise
                context.mark_interrupted(exc)
            report.outcome = current_outcome(context)
            sp.annotate(status=report.outcome.status.value)
            sp.incr("mappings", len(report.mappings))
        return report

    def _degrade(self, report: MatchReport, message: str) -> None:
        report.degradation.append(message)
        logger.warning("%r: %s", self.graph, message)

    def _retrieve(
        self,
        pattern: GroundPattern,
        opts: MatchOptions,
        report: MatchReport,
        local: str,
        stats: Optional[RetrievalStats] = None,
    ) -> Dict[str, List[str]]:
        """One retrieval attempt, walking the degradation ladder on error.

        Rung 0: configured indexes.  Rung 1: no indexes — the exact F_u
        scan with local pruning computed on the fly.  Rung 2: the basic
        matcher's full scan (no pruning at all).  Interruptions from the
        governance context always propagate.
        """
        try:
            return retrieve_feasible_mates(
                pattern,
                self.graph,
                attribute_index=(
                    self.attribute_index if opts.use_attribute_index else None
                ),
                profile_index=self.profile_index,
                local=local,
                radius=opts.radius,
                label_attr=opts.label_attr,
                stats=stats,
            )
        except ExecutionInterrupted:
            raise
        except Exception as exc:
            self._degrade(
                report,
                f"indexed retrieval (local={local!r}) failed ({exc}); "
                "retrying without indexes",
            )
        try:
            return retrieve_feasible_mates(
                pattern,
                self.graph,
                attribute_index=None,
                profile_index=None,
                local=local,
                radius=opts.radius,
                label_attr=opts.label_attr,
                stats=stats,
            )
        except ExecutionInterrupted:
            raise
        except Exception as exc:
            self._degrade(
                report,
                f"unindexed retrieval failed ({exc}); "
                "falling back to the basic scan matcher",
            )
        return scan_feasible_mates(pattern, self.graph)

    def _match_pipeline(
        self,
        pattern: GroundPattern,
        opts: MatchOptions,
        report: MatchReport,
        context: Optional[ExecutionContext],
    ) -> None:
        graph = self.graph
        if context is not None:
            context.check()

        # Step 0: baseline space (retrieval by F_u only) for reduction ratios
        baseline: Optional[Dict[str, List[str]]] = None
        if opts.compute_baseline or opts.local == "none":
            started = time.perf_counter()
            with trace_span("match.retrieve_baseline") as sp:
                baseline = self._retrieve(pattern, opts, report, local="none")
                sp.incr("space", space_size(baseline))
            report.times["retrieve_baseline"] = time.perf_counter() - started
            report.baseline_space = space_size(baseline)

        # Step 1+2: retrieval with local pruning
        if opts.local == "none":
            assert baseline is not None
            space = baseline
            report.times["local_pruning"] = 0.0
        else:
            started = time.perf_counter()
            with trace_span("match.prune", local=opts.local) as sp:
                retrieval_stats = RetrievalStats()
                space = self._retrieve(pattern, opts, report, local=opts.local,
                                       stats=retrieval_stats)
                sp.incr("space", space_size(space))
            report.times["local_pruning"] = time.perf_counter() - started
            report.retrieval = retrieval_stats
        report.retrieved_space = space_size(space)

        # Step 3: joint reduction (Algorithm 4.2)
        if opts.refine:
            started = time.perf_counter()
            with trace_span("match.refine") as sp:
                refinement_stats = RefinementStats()
                try:
                    space = refine_search_space(
                        pattern.motif,
                        graph,
                        space,
                        level=opts.refine_level,
                        stats=refinement_stats,
                        context=context,
                    )
                except ExecutionInterrupted:
                    report.times["refine"] = time.perf_counter() - started
                    raise
                except Exception as exc:
                    self._degrade(report, f"refinement failed ({exc}); "
                                          "searching the unrefined space")
                sp.incr("pairs_removed", refinement_stats.pairs_removed)
            report.times["refine"] = time.perf_counter() - started
            report.refinement = refinement_stats
        report.refined_space = space_size(space)

        # Step 4: search order
        started = time.perf_counter()
        with trace_span("match.order") as sp:
            sizes = {name: len(candidates)
                     for name, candidates in space.items()}
            if (opts.plan_order is not None
                    and set(opts.plan_order) == set(space.keys())):
                order, policy = list(opts.plan_order), "plan-cache"
            else:
                try:
                    if opts.optimize_order:
                        model = CostModel(
                            pattern.motif,
                            stats=(self.stats if opts.gamma_mode == "frequency"
                                   else None),
                            gamma_const=opts.gamma_const,
                            label_attr=opts.label_attr,
                            directed=graph.directed,
                        )
                        order, policy = (
                            greedy_order(pattern.motif, sizes, model), "greedy")
                    else:
                        order, policy = (
                            connected_order(pattern.motif, sizes), "connected")
                except Exception as exc:
                    self._degrade(
                        report,
                        f"search-order optimization failed ({exc}); "
                        "using declaration order")
                    order, policy = pattern.node_names(), "declaration"
            sp.annotate(policy=policy)
        report.times["order"] = time.perf_counter() - started
        report.order = order
        self._search(pattern, opts, report, space, order, context)

    def _search(
        self,
        pattern: GroundPattern,
        opts: MatchOptions,
        report: MatchReport,
        space: Dict[str, List[str]],
        order: Sequence[str],
        context: Optional[ExecutionContext],
    ) -> None:
        # Step 5: the backtracking search (Algorithm 4.1)
        started = time.perf_counter()
        counters = SearchCounters()
        with trace_span("match.search") as sp:
            try:
                report.mappings = find_matches(
                    pattern,
                    self.graph,
                    candidates=space,
                    order=order,
                    exhaustive=opts.exhaustive,
                    limit=opts.limit,
                    counters=counters,
                    context=context,
                )
            finally:
                report.times["search"] = time.perf_counter() - started
                report.search = counters
                sp.incr("results", counters.results)
                sp.incr("candidates_tried", counters.candidates_tried)

    def explain(
        self,
        pattern: GroundPattern,
        options: Optional[MatchOptions] = None,
    ) -> str:
        """A readable access plan: stages, space sizes, order, cost.

        Runs retrieval/pruning/ordering (not the final search) and
        renders what the pipeline would do — the graph-database analogue
        of ``EXPLAIN``.
        """
        opts = options or MatchOptions()
        space = retrieve_feasible_mates(
            pattern, self.graph,
            attribute_index=self.attribute_index if opts.use_attribute_index
            else None,
            profile_index=self.profile_index,
            local=opts.local, radius=opts.radius,
            label_attr=opts.label_attr,
        )
        lines = [f"match {pattern!r} on {self.graph!r}"]
        lines.append(
            f"  1. retrieve + local pruning [{opts.local}]: "
            + ", ".join(f"{u}:{len(c)}" for u, c in space.items())
        )
        if opts.refine:
            refined = refine_search_space(
                pattern.motif, self.graph, space, level=opts.refine_level
            )
            lines.append(
                "  2. refine (Algorithm 4.2): "
                + ", ".join(f"{u}:{len(c)}" for u, c in refined.items())
            )
            space = refined
        else:
            lines.append("  2. refine: skipped")
        sizes = {u: len(c) for u, c in space.items()}
        model = CostModel(
            pattern.motif,
            stats=self.stats if opts.gamma_mode == "frequency" else None,
            gamma_const=opts.gamma_const,
            label_attr=opts.label_attr,
            directed=self.graph.directed,
        )
        if opts.optimize_order:
            order = greedy_order(pattern.motif, sizes, model)
            policy = "greedy cost-based"
        else:
            order = connected_order(pattern.motif, sizes)
            policy = "connected"
        from .search_order import order_cost

        cost, size = order_cost(order, sizes, model)
        lines.append(f"  3. search order [{policy}]: {' > '.join(order)}")
        lines.append(
            f"     estimated cost {cost:.3g}, estimated results {size:.3g}"
        )
        lines.append(
            f"  4. search (Algorithm 4.1), space size "
            f"{space_size(space)}"
        )
        return "\n".join(lines)

    def match_pattern(
        self,
        pattern: GraphPattern,
        options: Optional[MatchOptions] = None,
        grammar=None,
        max_depth: int = 8,
        context: Optional[ExecutionContext] = None,
    ) -> MatchReport:
        """Match a (possibly recursive) pattern: union over derivations.

        The answer cap (``options.limit``) applies to the union: each
        derivation's search only runs for the answers still missing, and
        matching stops entirely once the cap is met — no derivation ever
        over-produces results that would then be thrown away.
        """
        opts = options or MatchOptions()
        merged: Optional[MatchReport] = None
        for ground in pattern.ground(grammar, max_depth):
            remaining_opts = opts
            if opts.limit is not None and merged is not None:
                remaining = opts.limit - len(merged.mappings)
                if remaining <= 0:
                    break
                remaining_opts = replace(opts, limit=remaining)
            report = self.match(ground, remaining_opts, context=context)
            if merged is None:
                merged = report
            else:
                merged.mappings.extend(report.mappings)
                for key, value in report.times.items():
                    merged.times[key] = merged.times.get(key, 0.0) + value
                merged.baseline_space += report.baseline_space
                merged.retrieved_space += report.retrieved_space
                merged.refined_space += report.refined_space
                merged.degradation.extend(report.degradation)
                merged.outcome = report.outcome
            if context is not None and context.is_interrupted:
                break
        return merged if merged is not None else MatchReport()


def baseline_options(**overrides) -> MatchOptions:
    """The paper's "Baseline": attribute retrieval only, naive order."""
    defaults = dict(local="none", refine=False, optimize_order=False)
    defaults.update(overrides)
    return MatchOptions(**defaults)


def optimized_options(**overrides) -> MatchOptions:
    """The paper's "Optimized": profiles + refinement + greedy order."""
    defaults = dict(local="profile", refine=True, optimize_order=True)
    defaults.update(overrides)
    return MatchOptions(**defaults)
