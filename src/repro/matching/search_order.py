"""Search-order optimization (Section 4.4).

A search order is a left-deep join plan over the pattern nodes.  Per
Definitions 4.11–4.13::

    Size(i) = Size(i.left) * Size(i.right) * gamma(i)
    Cost(i) = Size(i.left) * Size(i.right)
    Cost(plan) = sum_i Cost(i)

where the reduction factor ``gamma(i)`` is either a constant or the product
of the probabilities of the pattern edges the join closes.  The optimizer
follows the paper: left-deep plans only, chosen greedily (the join that
minimizes estimated cost, with estimated result size as tie-break); an
exhaustive enumerator is provided for validation on small patterns.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.motif import SimpleMotif
from .statistics import GraphStatistics


class CostModel:
    """Estimates reduction factors for joins over pattern nodes."""

    def __init__(
        self,
        motif: SimpleMotif,
        stats: Optional[GraphStatistics] = None,
        gamma_const: float = 0.1,
        label_attr: str = "label",
        directed: bool = False,
    ) -> None:
        self.motif = motif
        self.stats = stats
        self.gamma_const = gamma_const
        self.label_attr = label_attr
        self.directed = directed

    def _node_label(self, name: str):
        return self.motif.node(name).attrs.get(self.label_attr)

    def edge_probability(self, source: str, target: str) -> float:
        """P(e(u, v)) for one pattern edge, per the configured mode."""
        if self.stats is None:
            return self.gamma_const
        return self.stats.edge_probability(
            self._node_label(source), self._node_label(target), self.directed
        )

    def gamma(self, placed: Sequence[str], new_node: str) -> float:
        """Reduction factor of joining *new_node* onto the placed set.

        The product of probabilities of the pattern edges between the new
        node and already-placed nodes (Definition 4.11); 1.0 when the join
        closes no edge (a Cartesian step).
        """
        factor = 1.0
        placed_set = set(placed)
        for edge in self.motif.incident_edges(new_node):
            other = edge.target if edge.source == new_node else edge.source
            if other in placed_set:
                factor *= self.edge_probability(edge.source, edge.target)
        return factor


def order_cost(
    order: Sequence[str],
    sizes: Dict[str, int],
    model: CostModel,
) -> Tuple[float, float]:
    """``(Cost, final Size)`` of a left-deep plan in the given order."""
    if not order:
        return (0.0, 0.0)
    size = float(sizes[order[0]])
    total_cost = 0.0
    for i in range(1, len(order)):
        new_node = order[i]
        leaf_size = float(sizes[new_node])
        total_cost += size * leaf_size  # Cost(i) = Size(left) * Size(right)
        size = size * leaf_size * model.gamma(order[:i], new_node)
    return (total_cost, size)


def greedy_order(
    motif: SimpleMotif,
    sizes: Dict[str, int],
    model: CostModel,
) -> List[str]:
    """The paper's greedy left-deep order.

    The first join picks the leaf *pair* with the best estimate; every
    later step greedily extends the plan by one leaf.  The primary
    objective is the estimated *result size* of the join (which folds in
    the reduction factor gamma and therefore strongly prefers connected
    extensions — a disconnected leaf keeps gamma = 1 and multiplies the
    intermediate size), with the join cost as tie-break.  On the paper's
    running example this picks exactly the (A ⋈ C) ⋈ B plan of
    Section 4.4.
    """
    names = motif.node_names()
    if len(names) <= 1:
        return list(names)

    def join_key(placed: Sequence[str], size: float, leaf: str) -> Tuple[float, float]:
        cost = size * sizes[leaf]
        new_size = size * sizes[leaf] * model.gamma(placed, leaf)
        return (new_size, cost)

    # first join: best pair
    best_pair: Optional[Tuple[str, str]] = None
    best_key: Optional[Tuple[float, float]] = None
    for a, b in itertools.permutations(names, 2):
        key = join_key([a], float(sizes[a]), b)
        if best_key is None or key < best_key:
            best_key = key
            best_pair = (a, b)
    assert best_pair is not None
    order = [best_pair[0], best_pair[1]]
    size = float(sizes[best_pair[0]]) * sizes[best_pair[1]] * model.gamma(
        [best_pair[0]], best_pair[1]
    )
    remaining = [n for n in names if n not in order]
    while remaining:
        best_leaf = None
        best_key = None
        for leaf in remaining:
            key = join_key(order, size, leaf)
            if best_key is None or key < best_key:
                best_key = key
                best_leaf = leaf
        assert best_leaf is not None and best_key is not None
        order.append(best_leaf)
        remaining.remove(best_leaf)
        size = best_key[0]
    return order


def exhaustive_order(
    motif: SimpleMotif,
    sizes: Dict[str, int],
    model: CostModel,
    max_nodes: int = 9,
) -> List[str]:
    """Optimal left-deep order by enumeration (validation / ablation only)."""
    names = motif.node_names()
    if len(names) > max_nodes:
        raise ValueError(
            f"exhaustive enumeration limited to {max_nodes} nodes "
            f"(pattern has {len(names)})"
        )
    best_order: Optional[Tuple[str, ...]] = None
    best_cost = float("inf")
    for perm in itertools.permutations(names):
        cost, _ = order_cost(perm, sizes, model)
        if cost < best_cost:
            best_cost = cost
            best_order = perm
    return list(best_order) if best_order is not None else list(names)


def connected_order(motif: SimpleMotif, sizes: Dict[str, int]) -> List[str]:
    """A baseline order: smallest candidate set first, then BFS-connected.

    Used as the "without optimized order" arm in the experiments — it uses
    no cost model, only connectivity, mirroring a naive implementation.
    """
    names = motif.node_names()
    if not names:
        return []
    order: List[str] = []
    seen: set = set()
    remaining = set(names)
    while remaining:
        # start a new component at the declaration-order first node
        start = next(n for n in names if n in remaining)
        order.append(start)
        seen.add(start)
        remaining.discard(start)
        frontier = [n for n in motif.neighbors(start) if n in remaining]
        while frontier:
            nxt = frontier.pop(0)
            if nxt not in remaining:
                continue
            order.append(nxt)
            seen.add(nxt)
            remaining.discard(nxt)
            frontier.extend(n for n in motif.neighbors(nxt) if n in remaining)
    return order
