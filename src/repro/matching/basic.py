"""Algorithm 4.1: basic graph pattern matching.

A depth-first search over the product of feasible mates
``Phi(u1) x .. x Phi(uk)``.  ``Search(i)`` iterates candidates for the
i-th pattern node; ``Check(u_i, v)`` verifies edges back to already-mapped
pattern nodes (using the graph's O(1) end-point-pair edge hashtable) and
evaluates edge predicates.  When all nodes are mapped the residual
graph-wide predicate is evaluated and the mapping reported.  The
``exhaustive`` option selects one-vs-all mappings (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.bindings import Mapping
from ..core.graph import Graph
from ..core.pattern import GroundPattern
from ..runtime import ExecutionContext, ExecutionInterrupted, mapping_cost


class SearchCounters:
    """Instrumentation for the backtracking search (used by benchmarks)."""

    __slots__ = ("candidates_tried", "check_calls", "partial_states", "results")

    def __init__(self) -> None:
        self.candidates_tried = 0
        self.check_calls = 0
        self.partial_states = 0
        self.results = 0

    def __repr__(self) -> str:
        return (
            f"SearchCounters(tried={self.candidates_tried}, "
            f"checks={self.check_calls}, states={self.partial_states}, "
            f"results={self.results})"
        )


def scan_feasible_mates(pattern: GroundPattern, graph: Graph) -> Dict[str, List[str]]:
    """Feasible mates by full scan: Phi(u) = {v | F_u(v)} (Definition 4.8)."""
    space: Dict[str, List[str]] = {}
    for name in pattern.node_names():
        space[name] = [
            node.id for node in graph.nodes() if pattern.node_matches(name, node)
        ]
    return space


def find_matches(
    pattern: GroundPattern,
    graph: Graph,
    candidates: Optional[Dict[str, Sequence[str]]] = None,
    order: Optional[Sequence[str]] = None,
    exhaustive: bool = True,
    limit: Optional[int] = None,
    initial: Optional[Dict[str, str]] = None,
    counters: Optional[SearchCounters] = None,
    context: Optional[ExecutionContext] = None,
) -> List[Mapping]:
    """Run Algorithm 4.1 and return the feasible mappings.

    Parameters
    ----------
    candidates:
        The search space ``Phi`` (pattern node name -> candidate node ids).
        Computed by full scan when omitted.
    order:
        Search order over pattern node names (Section 4.4).  Defaults to
        declaration order.
    exhaustive:
        Return all mappings; when false, stop at the first.
    limit:
        Hard cap on the number of reported mappings (the paper terminates
        queries with more than 1000 answers); ``None`` means no cap.
    initial:
        Pre-pinned assignments (used by the neighborhood-subgraph pruning
        check, which requires ``u`` mapped to ``v``).
    counters:
        Optional :class:`SearchCounters` to fill with search statistics.
    context:
        Optional :class:`~repro.runtime.ExecutionContext`.  The search
        ticks it once per candidate extension; on deadline expiry, step
        budget exhaustion or cancellation the search unwinds and the
        mappings found so far are returned (the interruption is recorded
        on the context, so callers can report a structured outcome).
        The context's answer/memory caps also terminate the search
        early, inside the recursion.
    """
    if candidates is None:
        candidates = scan_feasible_mates(pattern, graph)
    node_names = pattern.node_names()
    if order is None:
        order = [n for n in node_names if not initial or n not in initial]
    else:
        order = [n for n in order if not initial or n not in initial]
    missing = set(node_names) - set(order) - set(initial or ())
    if missing:
        raise ValueError(f"search order misses pattern nodes: {sorted(missing)}")

    directed = graph.directed
    # Section 4.1: "to avoid repeated evaluation of edge predicates,
    # another hashtable can be used to store evaluated pairs of edges"
    edge_memo: Dict[tuple, bool] = {}
    if not exhaustive and limit is None:
        limit = 1

    mapping = Mapping()
    used: set[str] = set()
    results: List[Mapping] = []

    if initial:
        for pattern_name, node_id in initial.items():
            if not graph.has_node(node_id):
                return []
            if node_id in used:
                return []
            if not pattern.node_matches(pattern_name, graph.node(node_id)):
                return []
            mapping.nodes[pattern_name] = node_id
            used.add(node_id)
        # verify edges among the pinned nodes themselves (each pair is
        # checked twice, once from each side; harmless)
        for pattern_name, node_id in initial.items():
            if not _check(pattern, graph, mapping, pattern_name, node_id,
                          directed, counters, edge_memo):
                return []
            _record_edges(pattern, graph, mapping, pattern_name, node_id, directed)

    def search(i: int) -> bool:
        """Return True when the search should stop early."""
        if counters is not None:
            counters.partial_states += 1
        if i == len(order):
            if pattern.residual_holds(mapping, graph):
                results.append(mapping.copy())
                if counters is not None:
                    counters.results += 1
                if context is not None and context.note_result(
                    memory=mapping_cost(mapping)
                ):
                    return True
                if limit is not None and len(results) >= limit:
                    return True
            return False
        u = order[i]
        for v in candidates.get(u, ()):  # free candidates for u
            if v in used:
                continue
            if context is not None:
                context.tick()
            if counters is not None:
                counters.candidates_tried += 1
            if not _check(pattern, graph, mapping, u, v, directed, counters,
                          edge_memo):
                continue
            mapping.nodes[u] = v
            used.add(v)
            saved_edges = dict(mapping.edges)
            _record_edges(pattern, graph, mapping, u, v, directed)
            if search(i + 1):
                return True
            del mapping.nodes[u]
            used.discard(v)
            mapping.edges = saved_edges
        return False

    try:
        if context is not None:
            context.check()
        search(0)
    except ExecutionInterrupted as exc:
        if context is None:
            raise
        context.mark_interrupted(exc)
    return results


def _check(
    pattern: GroundPattern,
    graph: Graph,
    mapping: Mapping,
    u: str,
    v: str,
    directed: bool,
    counters: Optional[SearchCounters],
    edge_memo: Optional[Dict[tuple, bool]] = None,
) -> bool:
    """``Check(u_i, v)``: edges back to already-mapped pattern nodes."""
    if counters is not None:
        counters.check_calls += 1
    motif = pattern.motif
    for edge in motif.incident_edges(u):
        other = edge.target if edge.source == u else edge.source
        if other == u:
            # pattern self-loop: v must carry a matching self-loop
            data_edge = graph.edge_between(v, v)
            if data_edge is None or not _edge_ok(pattern, edge.name,
                                                 data_edge, edge_memo):
                return False
            continue
        if other not in mapping.nodes:
            continue
        w = mapping.nodes[other]
        if directed:
            if edge.source == u:
                data_edge = _directed_edge(graph, v, w)
            else:
                data_edge = _directed_edge(graph, w, v)
        else:
            data_edge = graph.edge_between(v, w)
        if data_edge is None:
            return False
        if not _edge_ok(pattern, edge.name, data_edge, edge_memo):
            return False
    return True


def _edge_ok(pattern, edge_name: str, data_edge, memo) -> bool:
    """Memoized edge-predicate evaluation (the Section 4.1 hashtable)."""
    if memo is None:
        return pattern.edge_matches(edge_name, data_edge)
    key = (edge_name, data_edge.id)
    cached = memo.get(key)
    if cached is None:
        cached = pattern.edge_matches(edge_name, data_edge)
        memo[key] = cached
    return cached


def _directed_edge(graph: Graph, source: str, target: str):
    """The directed data edge source->target, or None."""
    edge = graph.edge_between(source, target)
    if edge is not None and edge.source == source and edge.target == target:
        return edge
    return None


def _record_edges(
    pattern: GroundPattern,
    graph: Graph,
    mapping: Mapping,
    u: str,
    v: str,
    directed: bool,
) -> None:
    """Record data-edge assignments for pattern edges now fully mapped."""
    motif = pattern.motif
    for edge in motif.incident_edges(u):
        other = edge.target if edge.source == u else edge.source
        if other == u:
            data_edge = graph.edge_between(v, v)
        elif other in mapping.nodes:
            w = mapping.nodes[other]
            if directed:
                src = v if edge.source == u else w
                dst = w if edge.source == u else v
                data_edge = _directed_edge(graph, src, dst)
            else:
                data_edge = graph.edge_between(v, w)
        else:
            continue
        if data_edge is not None:
            mapping.edges[edge.name] = data_edge.id


def brute_force_matches(
    pattern: GroundPattern,
    graph: Graph,
    limit: Optional[int] = None,
) -> List[Mapping]:
    """Reference implementation: try every injective assignment.

    Exponential; only for testing the optimized search on small inputs.
    """
    import itertools

    names = pattern.node_names()
    node_ids = graph.node_ids()
    results: List[Mapping] = []
    for assignment in itertools.permutations(node_ids, len(names)):
        mapping = Mapping(dict(zip(names, assignment)))
        if _assignment_ok(pattern, graph, mapping):
            results.append(mapping)
            if limit is not None and len(results) >= limit:
                break
    return results


def _assignment_ok(pattern: GroundPattern, graph: Graph, mapping: Mapping) -> bool:
    for name in pattern.node_names():
        if not pattern.node_matches(name, graph.node(mapping.nodes[name])):
            return False
    for edge in pattern.motif.edges():
        v = mapping.nodes[edge.source]
        w = mapping.nodes[edge.target]
        data_edge = (
            _directed_edge(graph, v, w) if graph.directed else graph.edge_between(v, w)
        )
        if data_edge is None or not pattern.edge_matches(edge.name, data_edge):
            return False
        mapping.edges[edge.name] = data_edge.id
    return pattern.residual_holds(mapping, graph)
