"""Algorithm 4.2: joint reduction of the search space (Section 4.3).

An approximation of *pseudo subgraph isomorphism*: for each pattern node
``u`` and feasible mate ``v``, check whether the level-l adjacent subtree
of ``u`` is sub-isomorphic to that of ``v``.  The check is performed
iteratively: a bipartite graph ``B(u,v)`` is built between the neighbors of
``u`` and the neighbors of ``v`` (edge iff the neighbor pair survives in
the current space); if it has no semi-perfect matching, ``v`` is removed
from ``Phi(u)``.

Both implementation improvements from the paper are included:

* *marking*: only pairs whose bipartite graph may have changed are
  re-checked (pairs start marked; a successful check unmarks; removing
  ``v`` from ``Phi(u)`` re-marks the neighboring pairs);
* the pair set is kept in hashtables rather than a k x n matrix, so space
  is O(sum |Phi(u_i)|).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.graph import Graph
from ..core.motif import SimpleMotif
from ..runtime import ExecutionContext
from .bipartite import has_semi_perfect_matching


class RefinementStats:
    """Instrumentation: how much work the refinement performed."""

    __slots__ = ("levels_run", "pairs_checked", "pairs_removed", "matchings")

    def __init__(self) -> None:
        self.levels_run = 0
        self.pairs_checked = 0
        self.pairs_removed = 0
        self.matchings = 0

    def __repr__(self) -> str:
        return (
            f"RefinementStats(levels={self.levels_run}, "
            f"checked={self.pairs_checked}, removed={self.pairs_removed})"
        )


def refine_search_space(
    motif: SimpleMotif,
    graph: Graph,
    space: Dict[str, Sequence[str]],
    level: Optional[int] = None,
    stats: Optional[RefinementStats] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, List[str]]:
    """Run Algorithm 4.2 and return the reduced search space.

    Parameters
    ----------
    motif:
        The (ground) pattern structure.
    graph:
        The data graph.
    space:
        The input search space ``Phi`` (pattern node -> candidate ids).
    level:
        The refinement level ``l``; defaults to the number of pattern
        nodes (the paper's experiments set it to the query size).
    stats:
        Optional :class:`RefinementStats` to fill.
    context:
        Optional :class:`~repro.runtime.ExecutionContext`; ticked once
        per pair check.  Interruptions propagate to the caller — a
        partially refined space is still sound (refinement only ever
        removes candidates), so the planner may keep what was computed.

    Notes
    -----
    The refinement is *sound*: it never removes a candidate that
    participates in a genuine subgraph-isomorphic embedding, because a real
    embedding restricted to neighbors is itself a semi-perfect matching.
    """
    node_names = motif.node_names()
    if level is None:
        level = max(1, len(node_names))

    # Phi as name -> set for O(1) membership; preserve candidate order
    phi: Dict[str, List[str]] = {u: list(space.get(u, ())) for u in node_names}
    phi_sets: Dict[str, Set[str]] = {u: set(ids) for u, ids in phi.items()}

    pattern_neighbors: Dict[str, List[str]] = {
        u: motif.neighbors(u) for u in node_names
    }

    # marked pairs kept in insertion order (a dict) so runs are
    # deterministic regardless of hash randomization
    marked: Dict[Tuple[str, str], None] = {}
    for u in node_names:
        for v in phi[u]:
            marked[(u, v)] = None

    for _ in range(level):
        if not marked:
            break
        if stats is not None:
            stats.levels_run += 1
        # levels are synchronous: every check in level i sees Phi as of
        # the start of the level (exactly the Fig. 4.18 trace — A2 and C1
        # fall at level 1, B2 only at level 2 once A2's absence is
        # visible); removals apply between levels
        snapshot: Dict[str, Set[str]] = {u: set(s) for u, s in phi_sets.items()}
        removals: List[Tuple[str, str]] = []
        for u, v in list(marked):
            if v not in phi_sets[u]:
                del marked[(u, v)]
                continue
            if context is not None:
                context.tick()
            if stats is not None:
                stats.pairs_checked += 1
            neighbors_u = pattern_neighbors[u]
            neighbors_v = graph.all_neighbors(v)
            adjacency = {
                up: [vp for vp in neighbors_v if vp in snapshot[up]]
                for up in neighbors_u
            }
            if stats is not None:
                stats.matchings += 1
            del marked[(u, v)]
            if not has_semi_perfect_matching(neighbors_u, adjacency):
                removals.append((u, v))
        for u, v in removals:
            phi_sets[u].discard(v)
            if stats is not None:
                stats.pairs_removed += 1
        for u, v in removals:
            neighbors_u = pattern_neighbors[u]
            neighbors_v = graph.all_neighbors(v)
            for up in neighbors_u:
                for vp in neighbors_v:
                    if vp in phi_sets[up]:
                        marked[(up, vp)] = None

    return {u: [v for v in phi[u] if v in phi_sets[u]] for u in node_names}


def space_size(space: Dict[str, Sequence[str]]) -> int:
    """|Phi(u1)| * .. * |Phi(uk)| (Definition 4.9)."""
    total = 1
    for candidates in space.values():
        total *= len(candidates)
    return total


def space_reduction_ratio(
    space: Dict[str, Sequence[str]],
    baseline: Dict[str, Sequence[str]],
) -> float:
    """The reduction ratio of Section 5.1 (refined size / baseline size)."""
    base = space_size(baseline)
    if base == 0:
        return 0.0
    return space_size(space) / base
