"""Maximum bipartite matching (Hopcroft–Karp).

Used by the joint search-space reduction of Section 4.3: pseudo subgraph
isomorphism reduces level-l subtree containment to the existence of a
*semi-perfect matching* (all left nodes matched) in a bipartite graph
between the neighbors of a pattern node and the neighbors of its candidate
mate.  Hopcroft and Karp's algorithm gives O(E * sqrt(V)).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Mapping, Optional, Sequence

INFINITY = float("inf")


def hopcroft_karp(
    left: Sequence[Hashable],
    adjacency: Mapping[Hashable, Sequence[Hashable]],
) -> Dict[Hashable, Hashable]:
    """Maximum matching of a bipartite graph.

    Parameters
    ----------
    left:
        The left vertex set.
    adjacency:
        For each left vertex, the right vertices it may match.

    Returns
    -------
    dict
        A maximum matching as ``{left_vertex: right_vertex}``.
    """
    match_left: Dict[Hashable, Optional[Hashable]] = {u: None for u in left}
    match_right: Dict[Hashable, Optional[Hashable]] = {}
    dist: Dict[Hashable, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if match_left[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INFINITY
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                owner = match_right.get(v)
                if owner is None:
                    found_augmenting = True
                elif dist[owner] == INFINITY:
                    dist[owner] = dist[u] + 1
                    queue.append(owner)
        return found_augmenting

    def dfs(u: Hashable) -> bool:
        for v in adjacency.get(u, ()):
            owner = match_right.get(v)
            if owner is None or (dist[owner] == dist[u] + 1 and dfs(owner)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INFINITY
        return False

    while bfs():
        for u in left:
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in match_left.items() if v is not None}


def has_semi_perfect_matching(
    left: Sequence[Hashable],
    adjacency: Mapping[Hashable, Sequence[Hashable]],
) -> bool:
    """Whether every left vertex can be matched (semi-perfect matching).

    Fails fast when some left vertex has no candidates at all.
    """
    for u in left:
        if not adjacency.get(u):
            return False
    return len(hopcroft_karp(left, adjacency)) == len(left)
