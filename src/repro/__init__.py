"""GraphQL: graphs-at-a-time query language and access methods.

A from-scratch reproduction of He & Singh, *"Graphs-at-a-time: Query
Language and Access Methods for Graph Databases"* (SIGMOD 2008; extended
book-chapter version).  Graphs are the basic unit of information: the
library provides the attributed-graph data model, a formal language for
graph structures (motifs, grammars), graph patterns and templates, a bulk
graph algebra with FLWR query syntax, and the paper's access methods for
the selection operator (neighborhood-profile pruning, pseudo-subgraph-
isomorphism refinement, cost-based search ordering) — plus the SQL and
Datalog comparison substrates used in its evaluation.

Quickstart::

    from repro import GraphDatabase
    from repro.datasets import tiny_dblp

    db = GraphDatabase()
    db.register("DBLP", tiny_dblp())
    env = db.query('''
        graph P { node v1 <author>; node v2 <author>; };
        for P exhaustive in doc("DBLP")
        return graph { node v1 <name=P.v1.name>; node v2 <name=P.v2.name>;
                       edge e1 (v1, v2); };
    ''')
    coauthor_pairs = env["__result__"]
"""

from .core import (
    AttributeTuple,
    Graph,
    GraphCollection,
    GraphGrammar,
    GraphPattern,
    GraphTemplate,
    GroundPattern,
    Mapping,
    MatchedGraph,
    SimpleMotif,
)
from .interop import from_networkx, to_networkx
from .lang import compile_pattern_text, compile_program
from .matching import GraphMatcher, MatchOptions, baseline_options, optimized_options
from .runtime import (
    CancellationToken,
    ExecutionContext,
    ExecutionInterrupted,
    Outcome,
    QueryOutcome,
)
from .storage import GraphDatabase, GraphStore

__version__ = "1.0.0"

__all__ = [
    "AttributeTuple",
    "Graph",
    "GraphCollection",
    "GraphGrammar",
    "GraphPattern",
    "GraphTemplate",
    "GroundPattern",
    "Mapping",
    "MatchedGraph",
    "SimpleMotif",
    "compile_pattern_text",
    "compile_program",
    "GraphMatcher",
    "MatchOptions",
    "baseline_options",
    "optimized_options",
    "GraphDatabase",
    "GraphStore",
    "CancellationToken",
    "ExecutionContext",
    "ExecutionInterrupted",
    "Outcome",
    "QueryOutcome",
    "from_networkx",
    "to_networkx",
    "__version__",
]
