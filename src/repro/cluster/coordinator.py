"""Scatter-gather query routing across the shards of a cluster.

The :class:`ClusterCoordinator` is a *client-side* fan-out: it owns no
graphs, only a :class:`~repro.cluster.shardmap.ShardMap` and one wire
endpoint per shard.  A query is submitted to every shard that owns part
of the document, the per-shard answers stream back over independent
connections, and the coordinator merges them under one global limit and
one global deadline.

Failure handling reuses the service's resilience vocabulary:

* a per-**replica** :class:`~repro.service.resilience.CircuitBreaker`
  (via :class:`~repro.service.resilience.BreakerRegistry`) stops the
  coordinator from burning its deadline on a process that has been
  failing — an open breaker skips that replica instantly and the
  cooldown probe re-tests it;
* **replica failover**: with ``shard_map.replication_factor >= 2`` each
  slice has an ordered preference list of replicas; the coordinator
  tries them in order, failing over on connect failure, breaker-open,
  per-attempt timeout, or a non-mergeable outcome (shed/timed out).
  The replica that served each slice is named in the accounting
  (``replica_used``) and ``PARTIAL`` is produced only when an *entire*
  preference list is exhausted;
* a **hedge**: when a replica has not answered after ``hedge_after``
  seconds, an identical request (same idempotency key) is raced on a
  second connection and the first answer wins; the losing request is
  sent a ``cancel`` wire op so it stops burning shard worker capacity;
* a **divergence check**: every mergeable answer carries the snapshot
  version of the document it ran over, and the coordinator compares the
  versions the replicas of one slice report — a mismatch is counted
  (``version_divergence``) and logged, never silently merged over;
* **partial results**: shards that answered merge, shards that did not
  are named in the ``PARTIAL`` outcome's ``detail["shards"]``, and the
  accounting invariant ``submitted == merged + failed`` always holds.

Merged results are cached per target set; explicit
:meth:`ClusterCoordinator.move` invalidates exactly the entries whose
shards were touched, and a map-version change the coordinator did not
perform itself flushes the cache wholesale (safe over exact).
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.trace import span, tracer
from ..runtime import Outcome, QueryOutcome, partial_outcome, rejected_outcome
from ..service.admission import REASON_INVALID_QUERY
from ..service.cache import LRUCache
from ..service.client import ServiceClient
from ..service.resilience import BreakerRegistry
from .shardmap import ShardMap, ShardMove, slice_document

logger = logging.getLogger(__name__)

#: shard terminal states whose rows are complete for that shard
_MERGEABLE = (Outcome.COMPLETE, Outcome.TRUNCATED)


@dataclass
class ShardAnswer:
    """One shard's contribution to a fan-out."""

    shard: str
    ok: bool
    rows: int = 0
    outcome: Optional[QueryOutcome] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    hedged: bool = False
    hedge_won: bool = False
    #: the replica that produced the answer (None when none did)
    replica: Optional[str] = None
    #: replicas tried; attempts - 1 is the failover count
    attempts: int = 0
    #: the snapshot version the serving replica reported, if any
    version: Optional[int] = None

    def accounting(self) -> Dict[str, Any]:
        """The JSON-ready per-shard entry of ``detail["shards"]``."""
        entry: Dict[str, Any] = {
            "merged": self.ok,
            "rows": self.rows,
            "elapsed": round(self.elapsed, 6),
        }
        if self.outcome is not None:
            entry["status"] = self.outcome.status.value
        if self.error:
            entry["error"] = self.error
        if self.hedged:
            entry["hedged"] = True
        if self.hedge_won:
            entry["hedge_won"] = True
        if self.replica is not None:
            entry["replica_used"] = self.replica
        if self.attempts > 1:
            entry["failovers"] = self.attempts - 1
        if self.version is not None:
            entry["version"] = self.version
        return entry


@dataclass
class ClusterReply:
    """A merged scatter-gather answer.

    ``results`` rows carry their source shard under ``"shard"``;
    ``outcome.detail["shards"]`` holds the per-shard accounting whatever
    the terminal status, so tooling reads one shape for COMPLETE,
    TRUNCATED and PARTIAL alike.
    """

    results: List[Dict[str, Any]] = field(default_factory=list)
    outcome: QueryOutcome = field(default_factory=QueryOutcome)
    answers: List[ShardAnswer] = field(default_factory=list)
    cache: str = "miss"
    error: Optional[str] = None

    @property
    def submitted(self) -> int:
        """Shards the query was fanned out to."""
        return len(self.answers)

    @property
    def merged(self) -> int:
        """Shards whose rows are part of ``results``."""
        return sum(1 for a in self.answers if a.ok)

    @property
    def failed(self) -> int:
        """Shards that contributed nothing (down, shed, timed out…)."""
        return sum(1 for a in self.answers if not a.ok)

    @property
    def partial(self) -> bool:
        return self.outcome.status is Outcome.PARTIAL

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.error is None,
            "results": list(self.results),
            "outcome": self.outcome.to_dict(),
            "cache": self.cache,
            **({"error": self.error} if self.error else {}),
        }


def _default_client_factory(host: str, port: int,
                            timeout: Optional[float],
                            client_name: str) -> ServiceClient:
    return ServiceClient(host, port, timeout=timeout,
                         client_name=client_name)


class ClusterCoordinator:
    """Fans queries out to shards and merges their answers.

    *endpoints* maps shard id -> ``(host, port)`` and must cover every
    shard in *shard_map*.  When a plain dict is passed it is kept **by
    reference**, so a supervisor that restarts a shard on a fresh port
    can update the mapping in place and the next fan-out dials the new
    endpoint.  *client_factory* is the seam tests use to substitute
    in-process fakes for TCP clients; it receives
    ``(host, port, timeout, client_name)`` and must return an object
    with the :class:`~repro.service.client.ServiceClient` context
    manager + ``query`` surface.

    ``hedge_after=None`` disables hedging; ``breaker_threshold=0``
    disables the per-replica breakers.  ``attempt_timeout`` caps each
    replica attempt (the default carves the remaining deadline evenly
    across the replicas not yet tried, so the last replica of a
    preference list always gets a turn).
    """

    def __init__(
        self,
        shard_map: ShardMap,
        endpoints: Dict[str, Tuple[str, int]],
        *,
        timeout: float = 30.0,
        hedge_after: Optional[float] = None,
        attempt_timeout: Optional[float] = None,
        breaker_threshold: int = 4,
        breaker_cooldown: float = 5.0,
        result_cache_size: int = 128,
        client_name: str = "coordinator",
        client_factory: Callable[..., Any] = _default_client_factory,
    ) -> None:
        missing = [s for s in shard_map.shards if s not in endpoints]
        if missing:
            raise ValueError(f"no endpoint for shard(s): {missing}")
        self.shard_map = shard_map
        self.endpoints = (endpoints if isinstance(endpoints, dict)
                          else dict(endpoints))
        self.timeout = timeout
        self.hedge_after = hedge_after
        self.attempt_timeout = attempt_timeout
        self.client_name = client_name
        self.client_factory = client_factory
        self.breakers = (BreakerRegistry(threshold=breaker_threshold,
                                         cooldown=breaker_cooldown)
                         if breaker_threshold > 0 else None)
        self.result_cache = LRUCache(result_cache_size)
        #: query text -> error diagnostics, so repeated fan-outs of the
        #: same (valid or invalid) text skip re-analysis
        self._validation_cache = LRUCache(min(result_cache_size, 256))
        self._counters: Dict[str, int] = {}
        self._counter_lock = threading.Lock()
        #: last snapshot version each replica reported per slice, the
        #: read-side divergence check's memory
        self._slice_versions: Dict[str, Dict[str, int]] = {}
        #: the map version whose cache entries are exactly maintained;
        #: an out-of-band bump flushes the cache wholesale
        self._map_version_seen = shard_map.version

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def _validate(self, query_text: str) -> Tuple[Dict[str, Any], ...]:
        """Error-severity diagnostics for *query_text* (cached)."""
        cached = self._validation_cache.get(query_text)
        if cached is not None:
            return cached
        from ..analysis import analyze_pattern_text, errors_only, to_wire

        errors = tuple(to_wire(errors_only(analyze_pattern_text(query_text))))
        self._validation_cache.put(query_text, errors)
        return errors

    def stats(self) -> Dict[str, Any]:
        """Coordinator counters, cache stats and breaker states."""
        with self._counter_lock:
            counters = dict(self._counters)
            slice_versions = {s: dict(v)
                              for s, v in self._slice_versions.items()}
        return {
            "counters": counters,
            "result_cache": self.result_cache.stats(),
            "breakers": (self.breakers.state_counts()
                         if self.breakers is not None else {}),
            "breaker_detail": (self.breakers.snapshot()
                               if self.breakers is not None else {}),
            "map_version": self.shard_map.version,
            "replication_factor": self.shard_map.replication_factor,
            "shards": self.shard_map.shards,
            "slice_versions": slice_versions,
        }

    def _observe_version(self, shard: str, replica: str,
                         version: int) -> None:
        """Record one replica's reported snapshot version for a slice
        and count a divergence when its peers disagree."""
        with self._counter_lock:
            seen = self._slice_versions.setdefault(shard, {})
            mismatched = {r: v for r, v in seen.items()
                          if r != replica and v != version}
            seen[replica] = version
            if mismatched:
                self._counters["version_divergence"] = \
                    self._counters.get("version_divergence", 0) + 1
        if mismatched:
            logger.warning(
                "slice %s: replica %s reports snapshot version %s but "
                "peer(s) reported %s", shard, replica, version, mismatched)

    # -- placement changes ----------------------------------------------------

    def move(self, graph_id: str, shard: str) -> List[ShardMove]:
        """Pin a graph to a shard and drop the cache entries the move
        made stale (the caller transfers the data itself)."""
        moves = self.shard_map.move(graph_id, shard)
        if moves:
            self.invalidate_shards({m.src for m in moves if m.src}
                                   | {m.dst for m in moves})
        # the bump (if any) is now exactly accounted for: entries from
        # untouched shards stay valid
        self._map_version_seen = self.shard_map.version
        return moves

    def invalidate_shards(self, shard_ids) -> int:
        """Drop cached merges that involved any of *shard_ids*.

        Replication widens "involved": an entry targeting slice ``s``
        also depends on every replica in ``s``'s preference list, so a
        move touching a replica drops it too.
        """
        doomed = set(shard_ids)

        def affected(key) -> bool:
            for target in key[-1]:
                if target in doomed:
                    return True
                if self.shard_map.replication_factor > 1 and \
                        doomed & set(self.shard_map.preference_list(target)):
                    return True
            return False

        dropped = self.result_cache.invalidate(affected)
        self._count("cache_invalidated", dropped)
        return dropped

    def _check_map_version(self) -> None:
        """Flush the cache after an out-of-band map change.

        Mutations routed through :meth:`move` invalidate exactly the
        entries they touched; a version bump this coordinator did not
        perform (an operator editing the shared map) has no move list,
        so every entry is suspect and the whole cache is dropped.
        """
        version = self.shard_map.version
        if version != self._map_version_seen:
            dropped = self.result_cache.invalidate()
            self._count("cache_invalidated", dropped)
            self._map_version_seen = version

    # -- the fan-out ----------------------------------------------------------

    def query(
        self,
        query_text: str,
        document: str = "data",
        *,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        baseline: bool = False,
        use_cache: bool = True,
        use_shard_cache: bool = True,
        shard_ids: Optional[List[str]] = None,
    ) -> ClusterReply:
        """Run one pattern/FLWR query across the cluster.

        *shard_ids* restricts the fan-out (a routed single-graph lookup
        uses ``[shard_map.owner(graph_id)]``); the default is every
        shard — a whole-collection match may find answers anywhere.
        *use_cache* governs the coordinator's merged-result cache,
        *use_shard_cache* the shards' own result caches (benchmarks
        disable both to measure execution, not replay).
        """
        # validate once at the coordinator: an invalid query would be
        # rejected identically by every shard, so fanning it out only
        # multiplies the same refusal by the shard count
        errors = self._validate(query_text)
        if errors:
            self._count("invalid_queries")
            outcome = rejected_outcome(REASON_INVALID_QUERY)
            outcome.detail["diagnostics"] = list(errors)
            return ClusterReply(outcome=outcome, cache="bypass")
        budget = self.timeout if timeout is None else timeout
        targets = list(shard_ids) if shard_ids is not None \
            else self.shard_map.shards
        cache_key = None
        if use_cache and use_shard_cache and max_steps is None:
            self._check_map_version()
            cache_key = (document, query_text,
                         limit, baseline, tuple(sorted(targets)))
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                self._count("cache_hits")
                return ClusterReply(results=list(cached.results),
                                    outcome=cached.outcome,
                                    answers=list(cached.answers),
                                    cache="hit", error=cached.error)
        self._count("fanouts")
        deadline = time.monotonic() + budget
        answers: List[Optional[ShardAnswer]] = [None] * len(targets)
        rows_by_shard: Dict[str, List[Dict[str, Any]]] = {}
        rows_lock = threading.Lock()
        with span("cluster.query", document=document,
                  shards=len(targets)) as root:
            workers = []
            for index, shard in enumerate(targets):
                worker = threading.Thread(
                    target=self._query_shard,
                    args=(shard, index, answers, rows_by_shard, rows_lock,
                          root, query_text, document, limit, max_steps,
                          baseline, use_shard_cache, deadline),
                    name=f"fanout-{shard}", daemon=True)
                workers.append(worker)
                worker.start()
            for worker in workers:
                worker.join(max(0.0, deadline - time.monotonic()) + 0.25)
        with rows_lock:
            # freeze both sides: a worker that outlived the deadline may
            # still be mutating its answer, and the merge must stay
            # internally consistent (submitted == merged + failed)
            row_snapshot = {s: list(r) for s, r in rows_by_shard.items()}
            frozen = [replace(a) if a is not None else None
                      for a in answers]
        reply = self._merge(targets, frozen, row_snapshot, limit)
        if cache_key is not None and reply.error is None \
                and not reply.partial:
            # only full merges are worth replaying; a PARTIAL answer
            # must retry the failed shards, not be served from cache
            self.result_cache.put(cache_key, reply)
        return reply

    def _query_shard(self, shard, index, answers, rows_by_shard, rows_lock,
                     parent_span, query_text, document, limit, max_steps,
                     baseline, use_shard_cache, deadline) -> None:
        """One slice's fan-out leg: walk the preference list in order.

        Each replica attempt gets a carved per-attempt budget; connect
        failures, open breakers, attempt timeouts and non-mergeable
        outcomes fail over to the next replica.  The slice only counts
        as failed when the whole list is exhausted.
        """
        started = time.monotonic()
        answer = ShardAnswer(shard=shard, ok=False)
        answers[index] = answer
        replicated = self.shard_map.replication_factor > 1
        prefs = (self.shard_map.preference_list(shard) if replicated
                 else [shard])
        doc = slice_document(document, shard) if replicated else document
        errors: List[str] = []

        def describe(replica: str, message: str) -> str:
            # the answer is keyed by the slice's primary already: only
            # failover replicas need naming in error strings
            return message if replica == shard else f"{replica}: {message}"

        child = tracer().start("cluster.shard", parent=parent_span,
                               shard=shard)
        try:
            for position, replica in enumerate(prefs):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    errors.append("cluster deadline exhausted")
                    break
                if position > 0:
                    self._count("failovers")
                admitted = False
                if self.breakers is not None:
                    allowed, retry_after = self.breakers.allow(replica)
                    if not allowed:
                        self._count("breaker_skips")
                        errors.append(describe(
                            replica, "breaker open"
                            + (f" (retry in {retry_after:.2f}s)"
                               if retry_after is not None else "")))
                        continue
                    admitted = True
                endpoint = self.endpoints.get(replica)
                if endpoint is None:
                    if admitted:
                        self.breakers.release_probe(replica)
                    errors.append(describe(replica, "no endpoint"))
                    continue
                # leave each not-yet-tried replica a fair share of the
                # deadline so the last one always gets a turn
                budget = remaining / (len(prefs) - position)
                if self.attempt_timeout is not None:
                    budget = min(budget, self.attempt_timeout)
                if position == len(prefs) - 1:
                    budget = remaining  # the last hope gets everything
                answer.attempts = position + 1
                reply, error = self._attempt_replica(
                    replica, endpoint, child, answer, query_text, doc,
                    limit, max_steps, baseline, use_shard_cache,
                    min(deadline, time.monotonic() + budget))
                if self.breakers is not None:
                    # a decoded mergeable answer is the only success; a
                    # refusal/interruption/app error counts against the
                    # replica just as it did pre-replication
                    self.breakers.record(
                        replica,
                        failed=(reply is None or reply.error is not None
                                or reply.outcome.status
                                not in _MERGEABLE))
                if reply is None:
                    errors.append(describe(replica, error))
                    continue
                answer.replica = replica
                answer.outcome = reply.outcome
                if reply.error is not None:
                    # an application error (bad query, internal bug) is
                    # deterministic: replicas would repeat it, so it is
                    # definitive rather than failover-eligible
                    answer.error = describe(replica, reply.error)
                    break
                if reply.outcome.status in _MERGEABLE:
                    versions = getattr(reply, "versions", None) or {}
                    version = versions.get(doc)
                    if version is not None:
                        answer.version = version
                        self._observe_version(shard, replica, version)
                    with rows_lock:
                        rows_by_shard[shard] = [
                            dict(row, shard=shard)
                            for row in reply.results]
                    # rows land before the flag flips: a deadline-expired
                    # merge that reads ok=True always finds the rows too
                    answer.rows = len(reply.results)
                    answer.ok = True
                    break
                # the replica answered with a refusal or interruption
                # (SHED, TIMED_OUT, ...): another replica may do better
                errors.append(describe(
                    replica, reply.outcome.reason
                    or reply.outcome.status.value))
            if not answer.ok and answer.error is None:
                answer.error = ("; ".join(errors) if errors
                                else "no replica answered")
        finally:
            answer.elapsed = time.monotonic() - started
            child.annotate(merged=answer.ok, rows=answer.rows,
                           attempts=answer.attempts,
                           **({"replica": answer.replica}
                              if answer.replica else {}),
                           **({"error": answer.error}
                              if answer.error else {}))
            child.finish()

    def _attempt_replica(self, replica, endpoint, child, answer,
                         query_text, document, limit, max_steps, baseline,
                         use_shard_cache, attempt_deadline
                         ) -> Tuple[Optional[Any], Optional[str]]:
        """One replica's exchange, hedged when configured.

        Returns ``(reply, None)`` on any decoded reply and ``(None,
        error)`` on connect failure / attempt timeout.  When the hedge
        race produced a loser still in flight, its request id is sent a
        ``cancel`` wire op so it stops burning shard worker capacity.
        """
        host, port = endpoint
        idempotency = f"fanout-{uuid.uuid4().hex}"
        state: Dict[str, Any] = {"ids": {}, "errors": []}
        state_lock = threading.Lock()
        done = threading.Event()
        expected = [1]

        def attempt(tag: str) -> None:
            request_id = f"{idempotency}-{tag}"
            with state_lock:
                state["ids"][tag] = request_id
            try:
                budget = attempt_deadline - time.monotonic()
                if budget <= 0:
                    raise TimeoutError("attempt budget exhausted")
                with tracer().activate(child):
                    client = self.client_factory(
                        host, port, timeout=budget,
                        client_name=f"{self.client_name}/{replica}")
                    with client:
                        got = client.query(
                            query_text, document=document,
                            request_id=request_id,
                            limit=limit, timeout=budget,
                            max_steps=max_steps, baseline=baseline,
                            no_cache=not use_shard_cache,
                            idempotency_key=idempotency)
                with state_lock:
                    if "reply" not in state:
                        state["reply"] = got
                        state["tag"] = tag
            except Exception as exc:
                with state_lock:
                    state["errors"].append(f"{tag}: {exc}")
            finally:
                with state_lock:
                    # the exchange is decided once a reply landed or
                    # every launched attempt has failed
                    if "reply" in state or \
                            len(state["errors"]) >= expected[0]:
                        done.set()

        primary = threading.Thread(target=attempt, args=("primary",),
                                   name=f"fanout-{replica}-1", daemon=True)
        primary.start()
        hedged = False
        if self.hedge_after is not None:
            done.wait(min(self.hedge_after,
                          max(0.0, attempt_deadline - time.monotonic())))
            if not done.is_set() and \
                    attempt_deadline - time.monotonic() > 0:
                self._count("hedges")
                hedged = True
                answer.hedged = True
                with state_lock:
                    expected[0] = 2
                hedge = threading.Thread(
                    target=attempt, args=("hedge",),
                    name=f"fanout-{replica}-2", daemon=True)
                hedge.start()
        done.wait(max(0.0, attempt_deadline - time.monotonic()) + 0.05)
        with state_lock:
            reply = state.get("reply")
            errors = list(state["errors"])
            won_by = state.get("tag")
            ids = dict(state["ids"])
        if reply is not None and hedged:
            failed_tags = {e.split(":", 1)[0] for e in errors}
            loser = "hedge" if won_by == "primary" else "primary"
            if loser in ids and loser not in failed_tags:
                self._cancel_request(replica, host, port, ids[loser])
        if reply is None:
            return None, ("; ".join(errors) if errors
                          else "no answer inside the attempt deadline")
        if won_by == "hedge":
            self._count("hedge_wins")
            answer.hedge_won = True
        return reply, None

    def _cancel_request(self, replica: str, host: str, port: int,
                        target_id: str) -> None:
        """Best-effort cancel of a losing hedged request."""
        try:
            client = self.client_factory(
                host, port, timeout=1.0,
                client_name=f"{self.client_name}/{replica}")
            with client:
                found = client.cancel(target_id, reason="hedge loser")
            self._count("hedge_cancelled" if found
                        else "hedge_cancel_noop")
        except Exception:
            self._count("hedge_cancel_failed")

    # -- the merge ------------------------------------------------------------

    def _merge(self, targets, answers, rows_by_shard,
               limit: Optional[int]) -> ClusterReply:
        final: List[ShardAnswer] = [
            a if a is not None else ShardAnswer(shard=s, ok=False,
                                                error="never dispatched")
            for s, a in zip(targets, answers)]
        ok_shards = {a.shard for a in final if a.ok}
        rows: List[Dict[str, Any]] = []
        truncated = False
        for shard in targets:  # deterministic shard order
            if shard in ok_shards:
                rows.extend(rows_by_shard.get(shard, ()))
        for answer in final:
            if answer.ok and answer.outcome is not None \
                    and answer.outcome.status is Outcome.TRUNCATED:
                truncated = True
        if limit is not None and len(rows) > limit:
            rows = rows[:limit]
            truncated = True
        merged = sum(1 for a in final if a.ok)
        failed = len(final) - merged
        detail = {
            "submitted": len(final),
            "merged": merged,
            "failed": failed,
            "map_version": self.shard_map.version,
            "replication_factor": self.shard_map.replication_factor,
            "shards": {a.shard: a.accounting() for a in final},
        }
        steps = sum(a.outcome.steps for a in final
                    if a.outcome is not None)
        if failed == 0:
            status = Outcome.TRUNCATED if truncated else Outcome.COMPLETE
            reason = ("global limit reached across shards"
                      if truncated else "")
            outcome = QueryOutcome(status=status, reason=reason,
                                   steps=steps, results=len(rows),
                                   detail=detail)
            self._count("complete")
            return ClusterReply(results=rows, outcome=outcome,
                                answers=final)
        self._count("partials")
        failed_ids = sorted(a.shard for a in final if not a.ok)
        outcome = partial_outcome(
            f"{failed}/{len(final)} shard(s) did not answer: "
            + ", ".join(failed_ids), detail=detail)
        outcome.steps = steps
        outcome.results = len(rows)
        error = None
        if merged == 0:
            error = "every shard failed; no rows merged"
        return ClusterReply(results=rows, outcome=outcome,
                            answers=final, error=error)
