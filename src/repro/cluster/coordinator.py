"""Scatter-gather query routing across the shards of a cluster.

The :class:`ClusterCoordinator` is a *client-side* fan-out: it owns no
graphs, only a :class:`~repro.cluster.shardmap.ShardMap` and one wire
endpoint per shard.  A query is submitted to every shard that owns part
of the document, the per-shard answers stream back over independent
connections, and the coordinator merges them under one global limit and
one global deadline.

Failure handling reuses the service's resilience vocabulary:

* a per-shard :class:`~repro.service.resilience.CircuitBreaker` (via
  :class:`~repro.service.resilience.BreakerRegistry`) stops the
  coordinator from burning its deadline on a shard that has been
  failing — an open breaker fails the shard instantly and the cooldown
  probe re-tests it;
* a **hedge**: when a shard has not answered after ``hedge_after``
  seconds, an identical request (same idempotency key) is raced on a
  second connection and the first answer wins — the slow path of a
  stuck connection no longer decides the fan-out's latency;
* **partial results**: shards that answered merge, shards that did not
  are named in the ``PARTIAL`` outcome's ``detail["shards"]``, and the
  accounting invariant ``submitted == merged + failed`` always holds.

Merged results are cached keyed on the shard-map version; explicit
:meth:`ClusterCoordinator.move` / map changes invalidate exactly the
entries whose shards were touched.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.trace import span, tracer
from ..runtime import Outcome, QueryOutcome, partial_outcome
from ..service.cache import LRUCache
from ..service.client import ServiceClient
from ..service.resilience import BreakerRegistry
from .shardmap import ShardMap, ShardMove

#: shard terminal states whose rows are complete for that shard
_MERGEABLE = (Outcome.COMPLETE, Outcome.TRUNCATED)


@dataclass
class ShardAnswer:
    """One shard's contribution to a fan-out."""

    shard: str
    ok: bool
    rows: int = 0
    outcome: Optional[QueryOutcome] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    hedged: bool = False
    hedge_won: bool = False

    def accounting(self) -> Dict[str, Any]:
        """The JSON-ready per-shard entry of ``detail["shards"]``."""
        entry: Dict[str, Any] = {
            "merged": self.ok,
            "rows": self.rows,
            "elapsed": round(self.elapsed, 6),
        }
        if self.outcome is not None:
            entry["status"] = self.outcome.status.value
        if self.error:
            entry["error"] = self.error
        if self.hedged:
            entry["hedged"] = True
        if self.hedge_won:
            entry["hedge_won"] = True
        return entry


@dataclass
class ClusterReply:
    """A merged scatter-gather answer.

    ``results`` rows carry their source shard under ``"shard"``;
    ``outcome.detail["shards"]`` holds the per-shard accounting whatever
    the terminal status, so tooling reads one shape for COMPLETE,
    TRUNCATED and PARTIAL alike.
    """

    results: List[Dict[str, Any]] = field(default_factory=list)
    outcome: QueryOutcome = field(default_factory=QueryOutcome)
    answers: List[ShardAnswer] = field(default_factory=list)
    cache: str = "miss"
    error: Optional[str] = None

    @property
    def submitted(self) -> int:
        """Shards the query was fanned out to."""
        return len(self.answers)

    @property
    def merged(self) -> int:
        """Shards whose rows are part of ``results``."""
        return sum(1 for a in self.answers if a.ok)

    @property
    def failed(self) -> int:
        """Shards that contributed nothing (down, shed, timed out…)."""
        return sum(1 for a in self.answers if not a.ok)

    @property
    def partial(self) -> bool:
        return self.outcome.status is Outcome.PARTIAL

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.error is None,
            "results": list(self.results),
            "outcome": self.outcome.to_dict(),
            "cache": self.cache,
            **({"error": self.error} if self.error else {}),
        }


def _default_client_factory(host: str, port: int,
                            timeout: Optional[float],
                            client_name: str) -> ServiceClient:
    return ServiceClient(host, port, timeout=timeout,
                         client_name=client_name)


class ClusterCoordinator:
    """Fans queries out to shards and merges their answers.

    *endpoints* maps shard id -> ``(host, port)`` and must cover every
    shard in *shard_map*.  *client_factory* is the seam tests use to
    substitute in-process fakes for TCP clients; it receives
    ``(host, port, timeout, client_name)`` and must return an object
    with the :class:`~repro.service.client.ServiceClient` context
    manager + ``query`` surface.

    ``hedge_after=None`` disables hedging; ``breaker_threshold=0``
    disables the per-shard breakers.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        endpoints: Dict[str, Tuple[str, int]],
        *,
        timeout: float = 30.0,
        hedge_after: Optional[float] = None,
        breaker_threshold: int = 4,
        breaker_cooldown: float = 5.0,
        result_cache_size: int = 128,
        client_name: str = "coordinator",
        client_factory: Callable[..., Any] = _default_client_factory,
    ) -> None:
        missing = [s for s in shard_map.shards if s not in endpoints]
        if missing:
            raise ValueError(f"no endpoint for shard(s): {missing}")
        self.shard_map = shard_map
        self.endpoints = dict(endpoints)
        self.timeout = timeout
        self.hedge_after = hedge_after
        self.client_name = client_name
        self.client_factory = client_factory
        self.breakers = (BreakerRegistry(threshold=breaker_threshold,
                                         cooldown=breaker_cooldown)
                         if breaker_threshold > 0 else None)
        self.result_cache = LRUCache(result_cache_size)
        self._counters: Dict[str, int] = {}
        self._counter_lock = threading.Lock()

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def stats(self) -> Dict[str, Any]:
        """Coordinator counters, cache stats and breaker states."""
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            "counters": counters,
            "result_cache": self.result_cache.stats(),
            "breakers": (self.breakers.state_counts()
                         if self.breakers is not None else {}),
            "map_version": self.shard_map.version,
            "shards": self.shard_map.shards,
        }

    # -- placement changes ----------------------------------------------------

    def move(self, graph_id: str, shard: str) -> List[ShardMove]:
        """Pin a graph to a shard and drop the cache entries the move
        made stale (the caller transfers the data itself)."""
        moves = self.shard_map.move(graph_id, shard)
        if moves:
            self.invalidate_shards({m.src for m in moves if m.src}
                                   | {m.dst for m in moves})
        return moves

    def invalidate_shards(self, shard_ids) -> int:
        """Drop cached merges that involved any of *shard_ids*."""
        doomed = set(shard_ids)
        dropped = self.result_cache.invalidate(
            lambda key: bool(doomed & set(key[-1])))
        self._count("cache_invalidated", dropped)
        return dropped

    # -- the fan-out ----------------------------------------------------------

    def query(
        self,
        query_text: str,
        document: str = "data",
        *,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        baseline: bool = False,
        use_cache: bool = True,
        use_shard_cache: bool = True,
        shard_ids: Optional[List[str]] = None,
    ) -> ClusterReply:
        """Run one pattern/FLWR query across the cluster.

        *shard_ids* restricts the fan-out (a routed single-graph lookup
        uses ``[shard_map.owner(graph_id)]``); the default is every
        shard — a whole-collection match may find answers anywhere.
        *use_cache* governs the coordinator's merged-result cache,
        *use_shard_cache* the shards' own result caches (benchmarks
        disable both to measure execution, not replay).
        """
        budget = self.timeout if timeout is None else timeout
        targets = list(shard_ids) if shard_ids is not None \
            else self.shard_map.shards
        cache_key = None
        if use_cache and use_shard_cache and max_steps is None:
            cache_key = (self.shard_map.version, document, query_text,
                         limit, baseline, tuple(sorted(targets)))
            cached = self.result_cache.get(cache_key)
            if cached is not None:
                self._count("cache_hits")
                return ClusterReply(results=list(cached.results),
                                    outcome=cached.outcome,
                                    answers=list(cached.answers),
                                    cache="hit", error=cached.error)
        self._count("fanouts")
        deadline = time.monotonic() + budget
        answers: List[Optional[ShardAnswer]] = [None] * len(targets)
        rows_by_shard: Dict[str, List[Dict[str, Any]]] = {}
        rows_lock = threading.Lock()
        with span("cluster.query", document=document,
                  shards=len(targets)) as root:
            workers = []
            for index, shard in enumerate(targets):
                worker = threading.Thread(
                    target=self._query_shard,
                    args=(shard, index, answers, rows_by_shard, rows_lock,
                          root, query_text, document, limit, max_steps,
                          baseline, use_shard_cache, deadline),
                    name=f"fanout-{shard}", daemon=True)
                workers.append(worker)
                worker.start()
            for worker in workers:
                worker.join(max(0.0, deadline - time.monotonic()) + 0.25)
        with rows_lock:
            # freeze both sides: a worker that outlived the deadline may
            # still be mutating its answer, and the merge must stay
            # internally consistent (submitted == merged + failed)
            row_snapshot = {s: list(r) for s, r in rows_by_shard.items()}
            frozen = [replace(a) if a is not None else None
                      for a in answers]
        reply = self._merge(targets, frozen, row_snapshot, limit)
        if cache_key is not None and reply.error is None \
                and not reply.partial:
            # only full merges are worth replaying; a PARTIAL answer
            # must retry the failed shards, not be served from cache
            self.result_cache.put(cache_key, reply)
        return reply

    def _query_shard(self, shard, index, answers, rows_by_shard, rows_lock,
                     parent_span, query_text, document, limit, max_steps,
                     baseline, use_shard_cache, deadline) -> None:
        """One shard's attempt (runs on its own fan-out thread)."""
        started = time.monotonic()
        answer = ShardAnswer(shard=shard, ok=False)
        answers[index] = answer
        admitted = dispatched = False
        child = tracer().start("cluster.shard", parent=parent_span,
                               shard=shard)
        try:
            if self.breakers is not None:
                allowed, retry_after = self.breakers.allow(shard)
                if not allowed:
                    self._count("breaker_skips")
                    answer.error = (f"breaker open "
                                    f"(retry in {retry_after:.2f}s)"
                                    if retry_after is not None
                                    else "breaker open")
                    return
            admitted = True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                answer.error = "cluster deadline exhausted before dispatch"
                return
            dispatched = True
            host, port = self.endpoints[shard]
            idempotency = f"fanout-{uuid.uuid4().hex}"
            winner: Dict[str, Any] = {}
            done = threading.Event()

            def attempt(tag: str) -> None:
                try:
                    budget = deadline - time.monotonic()
                    if budget <= 0:
                        return
                    with tracer().activate(child):
                        client = self.client_factory(
                            host, port, timeout=budget,
                            client_name=f"{self.client_name}/{shard}")
                        with client:
                            got = client.query(
                                query_text, document=document,
                                limit=limit, timeout=budget,
                                max_steps=max_steps, baseline=baseline,
                                no_cache=not use_shard_cache,
                                idempotency_key=idempotency)
                    with rows_lock:
                        if not winner:
                            winner["reply"] = got
                            winner["tag"] = tag
                except Exception as exc:
                    with rows_lock:
                        winner.setdefault("errors", []).append(
                            f"{tag}: {exc}")
                finally:
                    with rows_lock:
                        # the exchange is decided once a reply landed or
                        # both attempts have failed
                        if "reply" in winner or \
                                len(winner.get("errors", ())) >= expected:
                            done.set()

            expected = 1
            primary = threading.Thread(target=attempt, args=("primary",),
                                       name=f"fanout-{shard}-1", daemon=True)
            primary.start()
            if self.hedge_after is not None:
                done.wait(min(self.hedge_after,
                              max(0.0, deadline - time.monotonic())))
                if not done.is_set() and deadline - time.monotonic() > 0:
                    self._count("hedges")
                    answer.hedged = True
                    with rows_lock:
                        expected = 2
                    hedge = threading.Thread(
                        target=attempt, args=("hedge",),
                        name=f"fanout-{shard}-2", daemon=True)
                    hedge.start()
            done.wait(max(0.0, deadline - time.monotonic()) + 0.05)
            with rows_lock:
                reply = winner.get("reply")
                errors = list(winner.get("errors", ()))
                won_by = winner.get("tag")
            if reply is None:
                answer.error = ("; ".join(errors) if errors
                                else "no answer inside the deadline")
                return
            if won_by == "hedge":
                self._count("hedge_wins")
                answer.hedge_won = True
            answer.outcome = reply.outcome
            if reply.error is not None:
                answer.error = reply.error
            elif reply.outcome.status in _MERGEABLE:
                with rows_lock:
                    rows_by_shard[shard] = [
                        dict(row, shard=shard) for row in reply.results]
                # rows land before the flag flips: a deadline-expired
                # merge that reads ok=True always finds the rows too
                answer.rows = len(reply.results)
                answer.ok = True
            else:
                # the shard answered, but with a refusal or an
                # interruption that carries no usable rows
                answer.error = (reply.outcome.reason
                                or reply.outcome.status.value)
        finally:
            answer.elapsed = time.monotonic() - started
            if self.breakers is not None:
                if dispatched:
                    self.breakers.record(shard, failed=not answer.ok)
                elif admitted:
                    # admitted but never sent (deadline ran out first):
                    # hand a HALF_OPEN probe slot back rather than
                    # charging the shard with a failure it never had a
                    # chance to avoid — or letting the slot time out
                    self.breakers.release_probe(shard)
            child.annotate(merged=answer.ok, rows=answer.rows,
                           **({"error": answer.error}
                              if answer.error else {}))
            child.finish()

    # -- the merge ------------------------------------------------------------

    def _merge(self, targets, answers, rows_by_shard,
               limit: Optional[int]) -> ClusterReply:
        final: List[ShardAnswer] = [
            a if a is not None else ShardAnswer(shard=s, ok=False,
                                                error="never dispatched")
            for s, a in zip(targets, answers)]
        ok_shards = {a.shard for a in final if a.ok}
        rows: List[Dict[str, Any]] = []
        truncated = False
        for shard in targets:  # deterministic shard order
            if shard in ok_shards:
                rows.extend(rows_by_shard.get(shard, ()))
        for answer in final:
            if answer.ok and answer.outcome is not None \
                    and answer.outcome.status is Outcome.TRUNCATED:
                truncated = True
        if limit is not None and len(rows) > limit:
            rows = rows[:limit]
            truncated = True
        merged = sum(1 for a in final if a.ok)
        failed = len(final) - merged
        detail = {
            "submitted": len(final),
            "merged": merged,
            "failed": failed,
            "map_version": self.shard_map.version,
            "shards": {a.shard: a.accounting() for a in final},
        }
        steps = sum(a.outcome.steps for a in final
                    if a.outcome is not None)
        if failed == 0:
            status = Outcome.TRUNCATED if truncated else Outcome.COMPLETE
            reason = ("global limit reached across shards"
                      if truncated else "")
            outcome = QueryOutcome(status=status, reason=reason,
                                   steps=steps, results=len(rows),
                                   detail=detail)
            self._count("complete")
            return ClusterReply(results=rows, outcome=outcome,
                                answers=final)
        self._count("partials")
        failed_ids = sorted(a.shard for a in final if not a.ok)
        outcome = partial_outcome(
            f"{failed}/{len(final)} shard(s) did not answer: "
            + ", ".join(failed_ids), detail=detail)
        outcome.steps = steps
        outcome.results = len(rows)
        error = None
        if merged == 0:
            error = "every shard failed; no rows merged"
        return ClusterReply(results=rows, outcome=outcome,
                            answers=final, error=error)
