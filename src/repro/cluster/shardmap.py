"""Consistent-hash placement of graph ids onto shards.

A :class:`ShardMap` owns the *placement function* of a cluster: which
shard serves which member graph of a collection.  Placement uses a
classic consistent-hash ring (each shard projected onto the ring at
``replicas`` points, a graph id owned by the first shard point at or
after its own hash), so adding or removing one shard moves only
``~1/N`` of the graphs instead of reshuffling everything.

Hashes come from :func:`hashlib.blake2b`, not :func:`hash` — Python
string hashing is salted per process, and the map must place a graph on
the same shard in the coordinator, the bootstrap that wrote the shard's
data file, and any tooling inspecting a serialized map.

The map is **versioned**: every mutation (:meth:`add_shard`,
:meth:`remove_shard`, :meth:`move`) bumps ``version`` and returns the
:class:`ShardMove` list it caused, so callers (the coordinator's result
cache, most importantly) can invalidate exactly the state the moves
made stale.

**Replication** (``replication_factor=R``) extends placement from one
owner to an ordered *preference list* of R distinct shards per graph
id.  The first entry is the primary (identical to :meth:`owner`); the
rest are the distinct shards found by a ring-successor walk from the
primary's canonical ring anchor.  Anchoring the walk at the primary —
not at each graph's own hash — makes every graph of one primary's
slice share one preference list, so an *entire slice* can fail over to
one replica and the concatenation-merge stays answer-preserving (the
paper's graphs-at-a-time guarantee needs whole slices, not scattered
graph fragments).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence


def _point(value: str) -> int:
    """A stable 64-bit ring position for a string."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def slice_document(document: str, primary: str) -> str:
    """The wire document name of one primary's slice on any replica.

    With ``replication_factor >= 2`` every owner of a slice —
    primary included — registers it under this name, so a failover
    retargets the *same* document on a different process.
    """
    return f"{document}@{primary}"


@dataclass(frozen=True)
class ShardMove:
    """One graph changing owner (``src is None`` for a first placement)."""

    graph_id: str
    src: Optional[str]
    dst: str

    def to_dict(self) -> Dict[str, Any]:
        return {"graph": self.graph_id, "from": self.src, "to": self.dst}


class ShardMap:
    """Versioned consistent-hash assignment of graph ids to shard ids.

    The ring decides *default* placement; :meth:`move` records explicit
    pins that override it (an operator draining a hot shard, a test
    forcing a layout).  Pins survive ring changes until their shard is
    removed.  All methods are thread-safe.
    """

    def __init__(self, shards: Sequence[str], replicas: int = 64,
                 version: int = 1,
                 pins: Optional[Dict[str, str]] = None,
                 replication_factor: int = 1) -> None:
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("duplicate shard ids")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.replicas = replicas
        self.replication_factor = replication_factor
        self.version = version
        self._lock = threading.Lock()
        self._shards: List[str] = list(shards)
        self._pins: Dict[str, str] = dict(pins) if pins else {}
        for graph_id, shard in self._pins.items():
            if shard not in self._shards:
                raise ValueError(
                    f"pin {graph_id!r} -> {shard!r}: unknown shard")
        self._ring: List[int] = []
        self._ring_owner: List[str] = []
        self._rebuild_ring()

    # -- ring internals -------------------------------------------------------

    def _rebuild_ring(self) -> None:
        points = []
        for shard in self._shards:
            for replica in range(self.replicas):
                points.append((_point(f"{shard}#{replica}"), shard))
        points.sort()
        self._ring = [point for point, _ in points]
        self._ring_owner = [shard for _, shard in points]

    def _ring_owner_of(self, graph_id: str) -> str:
        index = bisect.bisect_right(self._ring, _point(graph_id))
        if index == len(self._ring):
            index = 0  # wrap: the ring is a circle
        return self._ring_owner[index]

    # -- placement ------------------------------------------------------------

    @property
    def shards(self) -> List[str]:
        """The shard ids, in registration order."""
        with self._lock:
            return list(self._shards)

    def owner(self, graph_id: str) -> str:
        """The primary shard of *graph_id* (pins win over the ring)."""
        with self._lock:
            pinned = self._pins.get(graph_id)
            return pinned if pinned is not None else \
                self._ring_owner_of(graph_id)

    def _successors_of(self, primary: str, count: int) -> List[str]:
        """*count* distinct shards: *primary* first, then its ring
        successors (walk from the primary's canonical ``#0`` anchor)."""
        want = min(count, len(self._shards))
        owners = [primary]
        if want <= 1:
            return owners
        start = bisect.bisect_right(self._ring, _point(f"{primary}#0"))
        for offset in range(len(self._ring)):
            shard = self._ring_owner[(start + offset) % len(self._ring)]
            if shard not in owners:
                owners.append(shard)
                if len(owners) == want:
                    break
        return owners

    def owners(self, graph_id: str) -> List[str]:
        """The ordered preference list of *graph_id*: its primary (pin
        or ring owner), then ``replication_factor - 1`` distinct
        ring-successor shards.  Capped at the shard count; every graph
        of one primary's slice shares the same list (see the module
        docstring)."""
        with self._lock:
            pinned = self._pins.get(graph_id)
            primary = (pinned if pinned is not None
                       else self._ring_owner_of(graph_id))
            return self._successors_of(primary, self.replication_factor)

    def preference_list(self, shard: str) -> List[str]:
        """The failover order of *shard*'s slice: the shard itself,
        then its ring successors, ``replication_factor`` entries."""
        with self._lock:
            if shard not in self._shards:
                raise ValueError(f"unknown shard {shard!r}")
            return self._successors_of(shard, self.replication_factor)

    def split(self, graph_ids: Iterable[str]) -> Dict[str, List[str]]:
        """Graph ids grouped by owning shard (every shard present, so
        callers see empty shards explicitly rather than by omission)."""
        with self._lock:
            out: Dict[str, List[str]] = {s: [] for s in self._shards}
            for graph_id in graph_ids:
                pinned = self._pins.get(graph_id)
                owner = (pinned if pinned is not None
                         else self._ring_owner_of(graph_id))
                out[owner].append(graph_id)
            return out

    # -- mutations (each bumps the version) -----------------------------------

    def move(self, graph_id: str, shard: str) -> List[ShardMove]:
        """Pin one graph to *shard*; returns the move it caused (empty
        when the graph already lived there)."""
        with self._lock:
            if shard not in self._shards:
                raise ValueError(f"unknown shard {shard!r}")
            src = self._pins.get(graph_id) or self._ring_owner_of(graph_id)
            if src == shard:
                return []
            self._pins[graph_id] = shard
            self.version += 1
            return [ShardMove(graph_id, src, shard)]

    def add_shard(self, shard: str,
                  known_ids: Iterable[str] = ()) -> List[ShardMove]:
        """Add a shard to the ring; returns the moves among *known_ids*
        (the graphs the new shard takes over from its neighbours)."""
        with self._lock:
            if shard in self._shards:
                raise ValueError(f"shard {shard!r} already mapped")
            before = {g: self._pins.get(g) or self._ring_owner_of(g)
                      for g in known_ids}
            self._shards.append(shard)
            self._rebuild_ring()
            self.version += 1
            return self._diff(before)

    def remove_shard(self, shard: str,
                     known_ids: Iterable[str] = ()) -> List[ShardMove]:
        """Drop a shard; its pins dissolve and its graphs among
        *known_ids* are reported moving to their new ring owners."""
        with self._lock:
            if shard not in self._shards:
                raise ValueError(f"unknown shard {shard!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard")
            before = {g: self._pins.get(g) or self._ring_owner_of(g)
                      for g in known_ids}
            self._shards.remove(shard)
            self._pins = {g: s for g, s in self._pins.items() if s != shard}
            self._rebuild_ring()
            self.version += 1
            return self._diff(before)

    def _diff(self, before: Dict[str, str]) -> List[ShardMove]:
        moves = []
        for graph_id, src in before.items():
            dst = self._pins.get(graph_id) or self._ring_owner_of(graph_id)
            if dst != src:
                moves.append(ShardMove(graph_id, src, dst))
        return moves

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "shards": list(self._shards),
                "replicas": self.replicas,
                "version": self.version,
                "pins": dict(self._pins),
                "replication_factor": self.replication_factor,
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardMap":
        return cls(list(data["shards"]),
                   replicas=int(data.get("replicas", 64)),
                   version=int(data.get("version", 1)),
                   pins=dict(data.get("pins") or {}),
                   replication_factor=int(
                       data.get("replication_factor", 1)))

    def __repr__(self) -> str:
        return (f"<ShardMap v{self.version} {len(self._shards)} shard(s) "
                f"x{self.replicas} replicas, R={self.replication_factor}, "
                f"{len(self._pins)} pin(s)>")
