"""Sharded collection serving: placement, scatter-gather, partial results.

A cluster splits one graph collection across N independent
:mod:`repro.service` servers ("shards") by consistent-hashing each
member graph's id onto the ring (:class:`ShardMap`).  A
:class:`ClusterCoordinator` fans a query out to the owning shards over
the ndjson wire protocol, merges the per-shard answers under one global
limit and deadline, hedges requests to slow shards, and — when some
shards cannot answer — degrades to a structured ``PARTIAL``
:class:`~repro.runtime.QueryOutcome` that names exactly which shards
answered and which failed (``submitted == merged + failed``).

The paper's graphs-at-a-time algebra is what makes this split safe:
operators consume and produce *collections of graphs*, and a pattern
match touches one member graph at a time, so a collection partitioned
by graph id yields the same answer set as the unsharded run — merging
is concatenation, never a join.
"""

from .shardmap import ShardMap, ShardMove
from .coordinator import ClusterCoordinator, ClusterReply, ShardAnswer
from .bootstrap import LocalCluster, ShardProcess, launch_cluster, wait_ready

__all__ = [
    "ClusterCoordinator",
    "ClusterReply",
    "LocalCluster",
    "ShardAnswer",
    "ShardMap",
    "ShardMove",
    "ShardProcess",
    "launch_cluster",
    "wait_ready",
]
