"""Sharded collection serving: placement, replication, failover.

A cluster splits one graph collection across N independent
:mod:`repro.service` servers ("shards") by consistent-hashing each
member graph's id onto the ring (:class:`ShardMap`).  A
:class:`ClusterCoordinator` fans a query out to the owning shards over
the ndjson wire protocol, merges the per-shard answers under one global
limit and deadline, and hedges requests to slow shards.

With ``replication_factor >= 2`` every shard's slice also lives on its
ring-successor shards (an ordered *preference list*), the coordinator
**fails over** along that list instead of giving up on the first dead
process, and a :class:`ShardSupervisor` restarts dead shards from their
durable stores — so any *single* fault is absorbed silently.  Only when
an entire preference list is down does the coordinator degrade to a
structured ``PARTIAL`` :class:`~repro.runtime.QueryOutcome` that names
exactly which shards answered and which failed
(``submitted == merged + failed``).

The paper's graphs-at-a-time algebra is what makes this split safe:
operators consume and produce *collections of graphs*, and a pattern
match touches one member graph at a time, so a collection partitioned
by graph id yields the same answer set as the unsharded run — merging
is concatenation, never a join.  Replication leans on the same fact:
because a slice fails over as a whole (see
:func:`~repro.cluster.shardmap.slice_document`), the merged answer is
identical no matter which replica served it.
"""

from .shardmap import ShardMap, ShardMove, slice_document
from .coordinator import ClusterCoordinator, ClusterReply, ShardAnswer
from .bootstrap import LocalCluster, ShardProcess, launch_cluster, wait_ready
from .supervisor import ShardSupervisor

__all__ = [
    "ClusterCoordinator",
    "ClusterReply",
    "LocalCluster",
    "ShardAnswer",
    "ShardMap",
    "ShardMove",
    "ShardProcess",
    "ShardSupervisor",
    "launch_cluster",
    "slice_document",
    "wait_ready",
]
