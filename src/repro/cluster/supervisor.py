"""Shard supervision: health-poll children, restart the dead ones.

A :class:`ShardSupervisor` watches every :class:`ShardProcess` of a
:class:`~repro.cluster.bootstrap.LocalCluster` from a daemon thread.
Liveness has two layers:

* **process**: ``Popen.poll()`` — a SIGKILLed or crashed child is dead
  immediately, no probe needed;
* **wire**: the existing ``ready`` / ``health`` ops over a short-lived
  client — a process that is up but wedged (not accepting work) is
  counted unready, and after ``unready_threshold`` consecutive misses
  an ``unresponsive`` event is recorded for the operator.

Dead shards are restarted **from their durable stores** (the WAL
recovery path: :meth:`ShardProcess.respawn` replays the boot command
against the same ``--store`` file) under exponential backoff and a
per-shard ``restart_budget``; a shard that burns its budget is
abandoned with a terminal event rather than flapping forever.  Every
successful restart publishes the child's fresh port into the cluster's
live endpoint table — the one coordinators hold by reference — so
in-flight traffic fails over *to* a replica and later traffic drifts
*back* once the primary returns.

Stats (:meth:`ShardSupervisor.stats`) and the bounded event log feed
``repro-gql cluster status`` and the smoke report; with a
:class:`~repro.obs.metrics.MetricsRegistry` attached, restarts also
tick ``repro_cluster_shard_restarts_total``.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, List, Optional

logger = logging.getLogger(__name__)

#: bounded event log length (the supervisor may run for hours)
MAX_EVENTS = 200


class ShardSupervisor:
    """Daemon thread that keeps a local cluster's shards serving."""

    def __init__(self, cluster, *,
                 poll_interval: float = 0.25,
                 probe_timeout: float = 2.0,
                 unready_threshold: int = 3,
                 restart_budget: int = 3,
                 backoff_base: float = 0.25,
                 backoff_max: float = 4.0,
                 ready_timeout: float = 30.0,
                 metrics=None,
                 client_factory=None) -> None:
        if restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        self.cluster = cluster
        self.poll_interval = poll_interval
        self.probe_timeout = probe_timeout
        self.unready_threshold = unready_threshold
        self.restart_budget = restart_budget
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.ready_timeout = ready_timeout
        self._restart_counter = (
            metrics.counter("repro_cluster_shard_restarts_total",
                            "shards restarted by the supervisor")
            if metrics is not None else None)
        if client_factory is None:
            from ..service.client import ServiceClient

            def client_factory(host: str, port: int):
                return ServiceClient(host, port,
                                     timeout=self.probe_timeout,
                                     client_name="supervisor")
        self._client_factory = client_factory
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._unready: Dict[str, int] = {}
        #: monotonic time before which a shard's next restart may not run
        self._next_attempt: Dict[str, float] = {}
        self._abandoned: Dict[str, str] = {}
        self._events: List[Dict[str, Any]] = []
        self._restarts = 0
        self._restart_failures = 0
        self._polls = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Start the watch thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="shard-supervisor", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop watching (idempotent; running restarts finish first)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    # -- the watch loop -------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.poll_once()
            except Exception:  # a poll bug must not kill supervision
                logger.exception("supervisor poll failed")

    def poll_once(self) -> None:
        """One supervision pass over every shard (also callable from
        tests, without the thread)."""
        with self._lock:
            self._polls += 1
        for shard_id, shard in list(self.cluster.shards.items()):
            if shard_id in self._abandoned:
                continue
            if not shard.alive:
                self._handle_dead(shard_id, shard)
            else:
                self._probe(shard_id, shard)

    def _probe(self, shard_id: str, shard) -> None:
        """Wire-level readiness check of one live process."""
        ready, reason = False, "unreachable"
        try:
            with self._client_factory(shard.host, shard.port) as client:
                ready, reason = client.ready()
        except Exception as exc:
            reason = f"{type(exc).__name__}: {exc}"
        with self._lock:
            if ready:
                self._unready.pop(shard_id, None)
                return
            misses = self._unready.get(shard_id, 0) + 1
            self._unready[shard_id] = misses
            threshold_hit = misses == self.unready_threshold
        if threshold_hit:
            self._record("unresponsive", shard_id,
                         f"{misses} consecutive unready probes "
                         f"(last: {reason})")

    def _handle_dead(self, shard_id: str, shard) -> None:
        now = time.monotonic()
        with self._lock:
            if now < self._next_attempt.get(shard_id, 0.0):
                return  # still backing off
            if shard.restarts >= self.restart_budget:
                self._abandoned[shard_id] = (
                    f"restart budget ({self.restart_budget}) exhausted")
                message = self._abandoned[shard_id]
            else:
                message = None
        if message is not None:
            self._record("abandoned", shard_id, message)
            return
        rc = shard.process.poll()
        self._record("down", shard_id, f"process exited rc={rc}")
        try:
            shard.respawn(ready_timeout=self.ready_timeout)
        except Exception as exc:
            with self._lock:
                self._restart_failures += 1
                delay = min(self.backoff_max,
                            self.backoff_base * (2 ** shard.restarts))
                self._next_attempt[shard_id] = time.monotonic() + delay
            self._record("restart_failed", shard_id,
                         f"{type(exc).__name__}: {exc}; "
                         f"next attempt in {delay:.2f}s")
            return
        self.cluster.note_restart(shard_id)
        with self._lock:
            self._restarts += 1
            self._unready.pop(shard_id, None)
            delay = min(self.backoff_max,
                        self.backoff_base * (2 ** (shard.restarts - 1)))
            # backoff applies to the NEXT death too: a shard that dies
            # right after recovering should not hot-loop
            self._next_attempt[shard_id] = time.monotonic() + delay
        if self._restart_counter is not None:
            self._restart_counter.inc()
        banner = (f"recovered {shard_id}: restarted from "
                  f"{shard.data_path} on {shard.host}:{shard.port} "
                  f"(restart #{shard.restarts})")
        logger.warning(banner)
        self._record("restarted", shard_id, banner)

    # -- reporting ------------------------------------------------------------

    def _record(self, kind: str, shard_id: str, detail: str) -> None:
        event = {"time": time.time(), "event": kind,
                 "shard": shard_id, "detail": detail}
        with self._lock:
            self._events.append(event)
            del self._events[:-MAX_EVENTS]

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The bounded event log (down/restarted/abandoned/…)."""
        with self._lock:
            return list(self._events)

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready supervision snapshot."""
        with self._lock:
            return {
                "polls": self._polls,
                "restarts": self._restarts,
                "restart_failures": self._restart_failures,
                "restart_budget": self.restart_budget,
                "unready": dict(self._unready),
                "abandoned": dict(self._abandoned),
                "per_shard_restarts": {
                    sid: sp.restarts
                    for sid, sp in self.cluster.shards.items()},
                "events": list(self._events[-20:]),
            }
