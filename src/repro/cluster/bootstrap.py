"""Boot a local cluster: replicate slices, launch one server per shard.

:func:`launch_cluster` partitions a :class:`~repro.core.GraphCollection`
with a :class:`~repro.cluster.shardmap.ShardMap`, writes every slice to
the **durable store** (WAL-backed, see ``docs/robustness.md``) of each
shard in its preference list, and launches one ``repro-gql serve
--store ... --port 0`` subprocess per shard.  Each child announces its
OS-assigned port on a machine-readable ``ready {...}`` stdout line (see
:func:`wait_ready`), so no port numbers are configured — or fought
over — anywhere.

With ``replication_factor=R >= 2`` every slice lives on R processes
(each owner serves it under the shared ``document@primary`` name), a
replica-aware coordinator fails over instead of reporting ``PARTIAL``,
and an optional :class:`~repro.cluster.supervisor.ShardSupervisor`
(``supervise=True``) restarts dead shards from their stores.

The returned :class:`LocalCluster` is the test/ops handle: it builds
coordinators wired to the live endpoints (updated in place on
supervised restarts), SIGKILLs individual shards (the failover drills
in ``tests/integration`` and the smoke harness), and tears everything
down.
"""

from __future__ import annotations

import json
import queue
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core import GraphCollection
from .coordinator import ClusterCoordinator
from .shardmap import ShardMap, slice_document

#: stdout/stderr lines kept per child for failure diagnostics
TAIL_LINES = 20


def wait_ready(process: subprocess.Popen,
               timeout: float = 20.0,
               tail: Optional[Deque[str]] = None) -> Dict[str, Any]:
    """Block until a serve child prints its ``ready {...}`` line.

    Returns the parsed payload (``host``, ``port``, ``documents``…).
    A drain thread keeps consuming the child's stdout afterwards so its
    later prints (shutdown summary, slow-query log) never fill the pipe
    and block the server; everything drained lands in *tail* (a bounded
    deque, created here when not supplied), and on timeout or child
    exit the raised error carries the last ~{TAIL_LINES} captured lines
    so a CI failure is diagnosable from the report artifact alone.
    """
    if tail is None:
        tail = deque(maxlen=TAIL_LINES)
    lines: "queue.Queue[Optional[str]]" = queue.Queue()

    def pump() -> None:
        try:
            for line in process.stdout:  # type: ignore[union-attr]
                tail.append(line.rstrip("\n"))
                lines.put(line)
        finally:
            lines.put(None)

    threading.Thread(target=pump, name="shard-stdout-pump",
                     daemon=True).start()
    deadline = time.monotonic() + timeout

    def tail_text() -> str:
        captured = list(tail)
        if not captured:
            return "  <no output captured>"
        return "\n".join(f"  | {line}" for line in captured)

    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"no ready line after {timeout:g}s; last "
                f"{len(tail)} line(s) of child output:\n{tail_text()}")
        try:
            line = lines.get(timeout=remaining)
        except queue.Empty:
            continue
        if line is None:
            try:  # stdout EOF: the child is exiting — reap its rc
                rc = process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                rc = process.poll()
            raise RuntimeError(
                f"server exited (rc={rc}) before its ready "
                f"line; last {len(tail)} line(s) of child output:\n"
                f"{tail_text()}")
        if line.startswith("ready "):
            return json.loads(line[len("ready "):])


@dataclass
class ShardProcess:
    """One running shard: its subprocess, endpoint and respawn recipe."""

    shard_id: str
    process: subprocess.Popen
    host: str
    port: int
    data_path: Path
    graph_ids: List[str] = field(default_factory=list)
    #: the exact command + env + cwd that booted it — what a supervisor
    #: replays to restart the shard from its durable store
    command: List[str] = field(default_factory=list)
    env: Optional[Dict[str, str]] = None
    cwd: Optional[str] = None
    restarts: int = 0
    #: last ~20 lines of child output (shared with :func:`wait_ready`)
    output_tail: Deque[str] = field(
        default_factory=lambda: deque(maxlen=TAIL_LINES))

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the failure drill (no drain, no goodbye)."""
        if self.alive:
            self.process.kill()
        self.process.wait()

    def terminate(self, timeout: float = 10.0) -> None:
        """SIGTERM and wait for the graceful drain to finish."""
        if self.alive:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()

    def respawn(self, ready_timeout: float = 30.0) -> Dict[str, Any]:
        """Relaunch the shard from its durable store.

        The old process must already be dead.  On success the
        process/endpoint fields are replaced (the port is fresh — the
        OS assigns it) and ``restarts`` is bumped; on failure the
        half-started child is killed and the error (carrying the output
        tail) propagates.
        """
        if self.alive:
            raise RuntimeError(f"{self.shard_id} is still running")
        process = subprocess.Popen(
            self.command, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
            env=self.env, cwd=self.cwd)
        try:
            payload = wait_ready(process, timeout=ready_timeout,
                                 tail=self.output_tail)
        except BaseException:
            process.kill()
            process.wait()
            raise
        self.process = process
        self.host = str(payload["host"])
        self.port = int(payload["port"])
        self.restarts += 1
        return payload


class LocalCluster:
    """A handle on N locally-launched shard servers plus their map."""

    def __init__(self, shard_map: ShardMap,
                 shards: Dict[str, ShardProcess],
                 document: str, workdir: Path,
                 _tmp: Optional[tempfile.TemporaryDirectory] = None,
                 assignment: Optional[Dict[str, List[str]]] = None) -> None:
        self.shard_map = shard_map
        self.shards = shards
        self.document = document
        self.workdir = workdir
        self._tmp = _tmp
        #: primary placement: shard id -> the graph ids of ITS slice
        #: (replicas it hosts for neighbours are not listed here)
        self.assignment: Dict[str, List[str]] = dict(assignment or {})
        #: the LIVE endpoint table: coordinators hold it by reference,
        #: and a supervised restart updates it in place
        self._endpoints: Dict[str, Tuple[str, int]] = {
            sid: (sp.host, sp.port) for sid, sp in shards.items()}
        #: attached by :func:`launch_cluster` when ``supervise=True``
        self.supervisor = None

    @property
    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        """The live shard endpoint table (mutated on restarts)."""
        return self._endpoints

    def note_restart(self, shard_id: str) -> None:
        """Publish a respawned shard's fresh endpoint to coordinators."""
        shard = self.shards[shard_id]
        self._endpoints[shard_id] = (shard.host, shard.port)

    def coordinator(self, **kwargs) -> ClusterCoordinator:
        """A coordinator wired to this cluster's live endpoints."""
        return ClusterCoordinator(self.shard_map, self._endpoints,
                                  **kwargs)

    def kill(self, shard_id: str) -> None:
        """SIGKILL one shard (it stays in the map: the coordinator must
        discover and absorb — or report — the failure, not have it
        hidden)."""
        self.shards[shard_id].kill()

    def alive(self) -> List[str]:
        """Shard ids whose process is still running."""
        return [sid for sid, sp in self.shards.items() if sp.alive]

    def state(self) -> Dict[str, Any]:
        """A JSON-ready snapshot for tooling (``cluster status``)."""
        return {
            "document": self.document,
            "map": self.shard_map.to_dict(),
            "shards": {
                sid: {
                    "host": sp.host, "port": sp.port,
                    "pid": sp.process.pid, "alive": sp.alive,
                    "restarts": sp.restarts,
                }
                for sid, sp in self.shards.items()
            },
            "supervisor": (self.supervisor.stats()
                           if self.supervisor is not None else None),
        }

    def write_state(self, path: Path) -> None:
        """Atomically persist :meth:`state` (the status file)."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.state(), indent=2, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(path)

    def shutdown(self) -> None:
        """Stop supervision, drain every surviving shard, clean up."""
        if self.supervisor is not None:
            self.supervisor.stop()
        for shard in self.shards.values():
            shard.terminate()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _server_command(store_path: Path, workers: int, timeout: float,
                    fsync: str, extra_args: Sequence[str]) -> List[str]:
    return [sys.executable, "-m", "repro", "serve",
            "--store", str(store_path), "--fsync", fsync,
            "--port", "0", "--host", "127.0.0.1",
            "--workers", str(workers), "--timeout", str(timeout),
            *extra_args]


def _write_store(store_path: Path, documents: Dict[str, List[Any]],
                 fsync: str) -> None:
    """Write one shard's documents to its WAL-backed durable store."""
    from ..storage.database import GraphDatabase

    database = GraphDatabase()
    database.attach_durable(store_path, fsync=fsync)
    try:
        for name, graphs in documents.items():
            database.register_durable(
                name, GraphCollection(list(graphs), name=name))
    finally:
        database.close_store()


def launch_cluster(
    collection: GraphCollection,
    num_shards: int = 3,
    *,
    document: str = "data",
    replicas: int = 64,
    replication_factor: int = 1,
    workers: int = 2,
    query_timeout: float = 10.0,
    ready_timeout: float = 30.0,
    workdir: Optional[Path] = None,
    serve_args: Sequence[str] = (),
    fsync: str = "commit",
    supervise: bool = False,
    supervisor_args: Optional[Dict[str, Any]] = None,
) -> LocalCluster:
    """Split *collection* over *num_shards* local servers and boot them.

    Placement is by the member graphs' names through a fresh
    :class:`ShardMap`.  Every shard's slice is written to the durable
    store of each shard in its preference list (``replication_factor``
    of them); with R >= 2 each owner serves the slice under the shared
    ``document@primary`` name so a coordinator can fail over without
    losing answers.  ``supervise=True`` attaches a
    :class:`~repro.cluster.supervisor.ShardSupervisor` that restarts
    dead shards from their stores.  Raises if any child fails to report
    ready — already started shards are torn down again, so a failed
    boot leaks nothing.
    """
    names = [graph.name for graph in collection]
    if len(set(names)) != len(names):
        raise ValueError("collection has duplicate graph names; "
                         "placement needs unique graph ids")
    shard_ids = [f"shard{i}" for i in range(num_shards)]
    shard_map = ShardMap(shard_ids, replicas=replicas,
                         replication_factor=replication_factor)
    replicated = shard_map.replication_factor > 1
    assignment = shard_map.split(names)
    by_name = {graph.name: graph for graph in collection}
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        workdir = Path(tmp.name)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    env = _child_env()
    shards: Dict[str, ShardProcess] = {}
    try:
        for shard_id in shard_ids:
            store_path = workdir / f"{shard_id}.store"
            # every slice whose preference list names this shard lands
            # in its store — the primary's own slice included
            documents: Dict[str, List[Any]] = {}
            stored_ids: List[str] = []
            for primary in shard_ids:
                if shard_id not in shard_map.preference_list(primary):
                    continue
                doc = (slice_document(document, primary) if replicated
                       else document)
                documents[doc] = [by_name[n] for n in assignment[primary]]
                stored_ids.extend(assignment[primary])
            _write_store(store_path, documents, fsync)
            command = _server_command(store_path, workers, query_timeout,
                                      fsync, serve_args)
            process = subprocess.Popen(
                command, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True, env=env,
                cwd=str(workdir))
            shard = ShardProcess(
                shard_id=shard_id, process=process,
                host="", port=0, data_path=store_path,
                graph_ids=stored_ids, command=command, env=env,
                cwd=str(workdir))
            shards[shard_id] = shard
            payload = wait_ready(process, timeout=ready_timeout,
                                 tail=shard.output_tail)
            shard.host = str(payload["host"])
            shard.port = int(payload["port"])
    except BaseException:
        for shard in shards.values():
            shard.kill()
        if tmp is not None:
            tmp.cleanup()
        raise
    cluster = LocalCluster(shard_map, shards, document, workdir, _tmp=tmp,
                           assignment=assignment)
    if supervise:
        from .supervisor import ShardSupervisor

        cluster.supervisor = ShardSupervisor(
            cluster, ready_timeout=ready_timeout,
            **(supervisor_args or {}))
        cluster.supervisor.start()
    return cluster


def _child_env() -> Dict[str, str]:
    """The child's environment, with ``repro`` importable."""
    import os

    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    return env
