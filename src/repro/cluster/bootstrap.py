"""Boot a local cluster: split a collection, launch one server per shard.

:func:`launch_cluster` partitions a :class:`~repro.core.GraphCollection`
with a :class:`~repro.cluster.shardmap.ShardMap`, writes each shard's
slice to its own data file, and launches one ``repro-gql serve --port
0`` subprocess per shard.  Each child announces its OS-assigned port on
a machine-readable ``ready {...}`` stdout line (see
:func:`wait_ready`), so no port numbers are configured — or fought
over — anywhere.

The returned :class:`LocalCluster` is the test/ops handle: it builds
coordinators wired to the live endpoints, SIGKILLs individual shards
(the partial-failure drills in ``tests/integration`` and the smoke
harness), and tears everything down.
"""

from __future__ import annotations

import json
import queue
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core import GraphCollection
from ..storage.serializer import save_collection
from .coordinator import ClusterCoordinator
from .shardmap import ShardMap


def wait_ready(process: subprocess.Popen,
               timeout: float = 20.0) -> Dict[str, Any]:
    """Block until a serve child prints its ``ready {...}`` line.

    Returns the parsed payload (``host``, ``port``, ``documents``…).
    A drain thread keeps consuming the child's stdout afterwards so its
    later prints (shutdown summary, slow-query log) never fill the pipe
    and block the server.
    """
    lines: "queue.Queue[Optional[str]]" = queue.Queue()

    def pump() -> None:
        try:
            for line in process.stdout:  # type: ignore[union-attr]
                lines.put(line)
        finally:
            lines.put(None)

    threading.Thread(target=pump, name="shard-stdout-pump",
                     daemon=True).start()
    deadline = time.monotonic() + timeout
    seen: List[str] = []
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"no ready line after {timeout:g}s; "
                f"last output: {seen[-5:]}")
        try:
            line = lines.get(timeout=remaining)
        except queue.Empty:
            continue
        if line is None:
            raise RuntimeError(
                f"server exited (rc={process.poll()}) before its ready "
                f"line; last output: {seen[-5:]}")
        seen.append(line.rstrip("\n"))
        if line.startswith("ready "):
            return json.loads(line[len("ready "):])


@dataclass
class ShardProcess:
    """One running shard: its subprocess and announced endpoint."""

    shard_id: str
    process: subprocess.Popen
    host: str
    port: int
    data_path: Path
    graph_ids: List[str] = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the partial-failure drill (no drain, no goodbye)."""
        if self.alive:
            self.process.kill()
        self.process.wait()

    def terminate(self, timeout: float = 10.0) -> None:
        """SIGTERM and wait for the graceful drain to finish."""
        if self.alive:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


class LocalCluster:
    """A handle on N locally-launched shard servers plus their map."""

    def __init__(self, shard_map: ShardMap,
                 shards: Dict[str, ShardProcess],
                 document: str, workdir: Path,
                 _tmp: Optional[tempfile.TemporaryDirectory] = None) -> None:
        self.shard_map = shard_map
        self.shards = shards
        self.document = document
        self.workdir = workdir
        self._tmp = _tmp

    @property
    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        return {sid: (sp.host, sp.port) for sid, sp in self.shards.items()}

    def coordinator(self, **kwargs) -> ClusterCoordinator:
        """A coordinator wired to this cluster's live endpoints."""
        return ClusterCoordinator(self.shard_map, self.endpoints, **kwargs)

    def kill(self, shard_id: str) -> None:
        """SIGKILL one shard (it stays in the map: the coordinator must
        discover and report the failure, not have it hidden)."""
        self.shards[shard_id].kill()

    def alive(self) -> List[str]:
        """Shard ids whose process is still running."""
        return [sid for sid, sp in self.shards.items() if sp.alive]

    def shutdown(self) -> None:
        """Drain every surviving shard and remove the work directory."""
        for shard in self.shards.values():
            shard.terminate()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _server_command(data_path: Path, workers: int, timeout: float,
                    extra_args: Sequence[str]) -> List[str]:
    return [sys.executable, "-m", "repro", "serve", str(data_path),
            "--port", "0", "--host", "127.0.0.1",
            "--workers", str(workers), "--timeout", str(timeout),
            *extra_args]


def launch_cluster(
    collection: GraphCollection,
    num_shards: int = 3,
    *,
    document: str = "data",
    replicas: int = 64,
    workers: int = 2,
    query_timeout: float = 10.0,
    ready_timeout: float = 30.0,
    workdir: Optional[Path] = None,
    serve_args: Sequence[str] = (),
) -> LocalCluster:
    """Split *collection* over *num_shards* local servers and boot them.

    Placement is by the member graphs' names through a fresh
    :class:`ShardMap`; each shard serves its slice as document
    *document*.  Raises if any child fails to report ready — already
    started shards are torn down again, so a failed boot leaks nothing.
    """
    names = [graph.name for graph in collection]
    if len(set(names)) != len(names):
        raise ValueError("collection has duplicate graph names; "
                         "placement needs unique graph ids")
    shard_ids = [f"shard{i}" for i in range(num_shards)]
    shard_map = ShardMap(shard_ids, replicas=replicas)
    assignment = shard_map.split(names)
    by_name = {graph.name: graph for graph in collection}
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        workdir = Path(tmp.name)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    env = _child_env()
    shards: Dict[str, ShardProcess] = {}
    try:
        for shard_id in shard_ids:
            slice_path = workdir / f"{shard_id}.gql"
            owned = assignment[shard_id]
            save_collection(
                GraphCollection([by_name[n] for n in owned],
                                name=document), slice_path)
            process = subprocess.Popen(
                _server_command(slice_path, workers, query_timeout,
                                serve_args),
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env, cwd=str(workdir))
            payload = wait_ready(process, timeout=ready_timeout)
            shards[shard_id] = ShardProcess(
                shard_id=shard_id, process=process,
                host=str(payload["host"]), port=int(payload["port"]),
                data_path=slice_path, graph_ids=list(owned))
    except BaseException:
        for shard in shards.values():
            shard.kill()
        if tmp is not None:
            tmp.cleanup()
        raise
    return LocalCluster(shard_map, shards, document, workdir, _tmp=tmp)


def _child_env() -> Dict[str, str]:
    """The child's environment, with ``repro`` importable."""
    import os

    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    return env
