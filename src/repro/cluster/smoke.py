"""Self-checking cluster smoke: boot shards, soak, kill one, audit.

``repro-gql cluster smoke`` (CI's ``cluster-smoke`` job) boots an
N-shard local cluster over a seeded molecule collection, soaks it with
scatter-gather queries, SIGKILLs one shard halfway through, and then
*audits the books*:

* while every shard lived, fan-outs came back ``COMPLETE`` (or
  ``TRUNCATED``) with ``merged == submitted``;
* after the kill, fan-outs come back ``PARTIAL``, the dead shard is
  named in ``detail["shards"]``, and ``submitted == merged + failed``
  holds on every single reply;
* nothing hangs: every query returns inside its deadline.

Exit status 0 only when every check passes, so the harness is a CI
gate, not a demo.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..datasets.molecules import molecule_collection
from .bootstrap import LocalCluster, launch_cluster
from .coordinator import ClusterReply

#: aromatic-ring carbons: a couple hundred matches over the default
#: collection, spread across every shard's slice
SMOKE_QUERY = ('graph P { node a <label="C">; node b <label="C">; '
               'edge e1 (a, b); }')


def _audit(reply: ClusterReply, label: str,
           problems: List[str]) -> None:
    """The invariants every reply must satisfy, dead shard or not."""
    if reply.submitted != reply.merged + reply.failed:
        problems.append(
            f"{label}: submitted {reply.submitted} != merged "
            f"{reply.merged} + failed {reply.failed}")
    detail = reply.outcome.detail
    if not detail:
        problems.append(f"{label}: outcome carries no shard accounting")
        return
    if detail.get("submitted") != reply.submitted \
            or detail.get("merged") != reply.merged \
            or detail.get("failed") != reply.failed:
        problems.append(f"{label}: detail accounting disagrees with "
                        f"the answers list: {detail}")
    shard_rows = sum(entry.get("rows", 0)
                     for entry in detail.get("shards", {}).values()
                     if entry.get("merged"))
    limit_cut = reply.outcome.status.value == "TRUNCATED"
    if not limit_cut and shard_rows != len(reply.results):
        problems.append(
            f"{label}: per-shard row counts sum to {shard_rows} but "
            f"{len(reply.results)} rows were merged")


def run_smoke(
    shards: int = 3,
    molecules: int = 48,
    queries: int = 40,
    seed: int = 97,
    kill: bool = True,
    query_timeout: float = 8.0,
    hedge_after: Optional[float] = None,
    cluster: Optional[LocalCluster] = None,
) -> Dict[str, Any]:
    """Run the drill; returns the report dict (``report["ok"]`` gates).

    Passing a pre-booted *cluster* skips the boot (the CI job reuses
    one cluster for several drills); otherwise one is launched and torn
    down here.
    """
    own_cluster = cluster is None
    if cluster is None:
        cluster = launch_cluster(
            molecule_collection(num_molecules=molecules, seed=seed),
            num_shards=shards)
    problems: List[str] = []
    phases: Dict[str, Dict[str, int]] = {
        "healthy": {}, "degraded": {}}
    kill_at = queries // 2 if kill else queries + 1
    victim = cluster.shard_map.shards[-1]
    started = time.monotonic()
    try:
        coordinator = cluster.coordinator(
            timeout=query_timeout, hedge_after=hedge_after,
            # a smoke run must observe every fan-out, not replay one
            result_cache_size=0,
            # the probe interval stays far below the soak length so the
            # post-kill phase records real connection failures, not just
            # breaker fast-fails
            breaker_cooldown=0.5)
        for index in range(queries):
            if index == kill_at:
                cluster.kill(victim)
            phase = "healthy" if index < kill_at else "degraded"
            reply = coordinator.query(SMOKE_QUERY, limit=500)
            label = f"query {index} ({phase})"
            _audit(reply, label, problems)
            status = reply.outcome.status.value
            phases[phase][status] = phases[phase].get(status, 0) + 1
            if phase == "healthy":
                if reply.failed:
                    problems.append(
                        f"{label}: {reply.failed} shard(s) failed with "
                        f"every shard alive")
            else:
                if status != "PARTIAL":
                    problems.append(
                        f"{label}: expected PARTIAL after killing "
                        f"{victim}, got {status}")
                dead = reply.outcome.detail.get("shards", {}).get(victim)
                if not dead or dead.get("merged"):
                    problems.append(
                        f"{label}: killed shard {victim} not reported "
                        f"failed: {dead}")
            if not reply.results and phase == "healthy":
                problems.append(f"{label}: zero rows from a healthy "
                                f"cluster")
        elapsed = time.monotonic() - started
        stats = coordinator.stats()
    finally:
        if own_cluster:
            cluster.shutdown()
    return {
        "ok": not problems,
        "problems": problems,
        "phases": phases,
        "queries": queries,
        "shards": shards,
        "killed": victim if kill else None,
        "elapsed": round(elapsed, 3),
        "coordinator": stats,
    }
