"""Self-checking cluster smoke: boot shards, soak, kill one, audit.

``repro-gql cluster smoke`` (CI's ``cluster-smoke`` job) boots an
N-shard local cluster over a seeded molecule collection, soaks it with
scatter-gather queries, SIGKILLs one shard halfway through, and then
*audits the books*.  What the kill must look like depends on the
replication factor:

* **R = 1** (no replicas): after the kill, fan-outs come back
  ``PARTIAL``, the dead shard is named in ``detail["shards"]``, and
  ``submitted == merged + failed`` holds on every single reply;
* **R >= 2** (replicated, supervised): the kill must be *invisible* —
  zero ``PARTIAL`` replies, every fan-out ``COMPLETE`` (or
  ``TRUNCATED``) with ``failed == 0``, the victim's slice served by a
  replica (the coordinator's ``failovers`` counter moves), and before
  teardown the supervisor-restarted victim process must serve its
  slice again (``replica_used`` drifts back to the primary);
* either way, the accounting invariant holds on every reply and
  nothing hangs: every query returns inside its deadline.

Exit status 0 only when every check passes, so the harness is a CI
gate, not a demo.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..datasets.molecules import molecule_collection
from .bootstrap import LocalCluster, launch_cluster
from .coordinator import ClusterReply

#: aromatic-ring carbons: a couple hundred matches over the default
#: collection, spread across every shard's slice
SMOKE_QUERY = ('graph P { node a <label="C">; node b <label="C">; '
               'edge e1 (a, b); }')


def _audit(reply: ClusterReply, label: str,
           problems: List[str]) -> None:
    """The invariants every reply must satisfy, dead shard or not."""
    if reply.submitted != reply.merged + reply.failed:
        problems.append(
            f"{label}: submitted {reply.submitted} != merged "
            f"{reply.merged} + failed {reply.failed}")
    detail = reply.outcome.detail
    if not detail:
        problems.append(f"{label}: outcome carries no shard accounting")
        return
    if detail.get("submitted") != reply.submitted \
            or detail.get("merged") != reply.merged \
            or detail.get("failed") != reply.failed:
        problems.append(f"{label}: detail accounting disagrees with "
                        f"the answers list: {detail}")
    shard_rows = sum(entry.get("rows", 0)
                     for entry in detail.get("shards", {}).values()
                     if entry.get("merged"))
    limit_cut = reply.outcome.status.value == "TRUNCATED"
    if not limit_cut and shard_rows != len(reply.results):
        problems.append(
            f"{label}: per-shard row counts sum to {shard_rows} but "
            f"{len(reply.results)} rows were merged")


def _pick_victim(cluster: LocalCluster) -> str:
    """A shard whose own slice is nonempty (killing an empty shard
    would prove nothing about failover)."""
    candidates = [s for s in cluster.shard_map.shards
                  if cluster.assignment.get(s)]
    return (candidates[-1] if candidates
            else cluster.shard_map.shards[-1])


def _await_recovery(cluster: LocalCluster, coordinator, victim: str,
                    problems: List[str],
                    recovery_timeout: float) -> Dict[str, Any]:
    """Wait for the supervisor to restart *victim* and for traffic to
    drift back to it; returns the recovery section of the report."""
    recovery: Dict[str, Any] = {"restarted": False,
                                "primary_serving_again": False}
    supervisor = cluster.supervisor
    deadline = time.monotonic() + recovery_timeout
    while time.monotonic() < deadline:
        if supervisor is not None \
                and supervisor.stats()["restarts"] >= 1 \
                and cluster.shards[victim].alive:
            recovery["restarted"] = True
            break
        time.sleep(0.1)
    if not recovery["restarted"]:
        problems.append(
            f"recovery: supervisor never restarted {victim} within "
            f"{recovery_timeout:g}s "
            f"(stats: {supervisor.stats() if supervisor else None})")
        return recovery
    # the breaker on the victim needs its cooldown to lapse, then one
    # half-open probe succeeds and traffic returns to the primary
    while time.monotonic() < deadline:
        reply = coordinator.query(SMOKE_QUERY, limit=500)
        _audit(reply, "recovery probe", problems)
        entry = reply.outcome.detail.get("shards", {}).get(victim, {})
        if entry.get("merged") and entry.get("replica_used") == victim:
            recovery["primary_serving_again"] = True
            break
        time.sleep(0.2)
    if not recovery["primary_serving_again"]:
        problems.append(
            f"recovery: restarted {victim} never served its slice "
            f"again within {recovery_timeout:g}s")
    if supervisor is not None:
        recovery["supervisor"] = supervisor.stats()
    return recovery


def run_smoke(
    shards: int = 3,
    molecules: int = 48,
    queries: int = 40,
    seed: int = 97,
    kill: bool = True,
    query_timeout: float = 8.0,
    hedge_after: Optional[float] = None,
    cluster: Optional[LocalCluster] = None,
    replication: int = 1,
    supervise: Optional[bool] = None,
    recovery_timeout: float = 30.0,
) -> Dict[str, Any]:
    """Run the drill; returns the report dict (``report["ok"]`` gates).

    Passing a pre-booted *cluster* skips the boot (the CI job reuses
    one cluster for several drills); otherwise one is launched and torn
    down here.  ``replication >= 2`` turns the drill into the
    zero-PARTIAL variant (see the module docstring); *supervise*
    defaults to on exactly when replicated.
    """
    if supervise is None:
        supervise = replication > 1
    own_cluster = cluster is None
    if cluster is None:
        cluster = launch_cluster(
            molecule_collection(num_molecules=molecules, seed=seed),
            num_shards=shards, replication_factor=replication,
            supervise=supervise)
    replicated = cluster.shard_map.replication_factor > 1
    problems: List[str] = []
    phases: Dict[str, Dict[str, int]] = {
        "healthy": {}, "degraded": {}}
    kill_at = queries // 2 if kill else queries + 1
    victim = _pick_victim(cluster)
    recovery: Optional[Dict[str, Any]] = None
    started = time.monotonic()
    try:
        coordinator = cluster.coordinator(
            timeout=query_timeout, hedge_after=hedge_after,
            # a smoke run must observe every fan-out, not replay one
            result_cache_size=0,
            # the probe interval stays far below the soak length so the
            # post-kill phase records real connection failures, not just
            # breaker fast-fails
            breaker_cooldown=0.5)
        for index in range(queries):
            if index == kill_at:
                cluster.kill(victim)
            phase = "healthy" if index < kill_at else "degraded"
            reply = coordinator.query(SMOKE_QUERY, limit=500)
            label = f"query {index} ({phase})"
            _audit(reply, label, problems)
            status = reply.outcome.status.value
            phases[phase][status] = phases[phase].get(status, 0) + 1
            if phase == "healthy":
                if reply.failed:
                    problems.append(
                        f"{label}: {reply.failed} shard(s) failed with "
                        f"every shard alive")
            elif replicated:
                # the whole point of R >= 2: a single fault is invisible
                if status == "PARTIAL" or reply.failed:
                    problems.append(
                        f"{label}: expected zero-PARTIAL serving with "
                        f"replication, got {status} "
                        f"({reply.failed} failed)")
            else:
                if status != "PARTIAL":
                    problems.append(
                        f"{label}: expected PARTIAL after killing "
                        f"{victim}, got {status}")
                dead = reply.outcome.detail.get("shards", {}).get(victim)
                if not dead or dead.get("merged"):
                    problems.append(
                        f"{label}: killed shard {victim} not reported "
                        f"failed: {dead}")
            if not reply.results and phase == "healthy":
                problems.append(f"{label}: zero rows from a healthy "
                                f"cluster")
        if kill and replicated:
            counters = coordinator.stats()["counters"]
            if not counters.get("failovers"):
                problems.append(
                    f"killing {victim} never caused a failover — the "
                    f"drill did not exercise replication")
            if cluster.supervisor is not None:
                recovery = _await_recovery(cluster, coordinator, victim,
                                           problems, recovery_timeout)
        elapsed = time.monotonic() - started
        stats = coordinator.stats()
    finally:
        if own_cluster:
            cluster.shutdown()
    return {
        "ok": not problems,
        "problems": problems,
        "phases": phases,
        "queries": queries,
        "shards": shards,
        "replication": cluster.shard_map.replication_factor,
        "supervised": cluster.supervisor is not None,
        "killed": victim if kill else None,
        "recovery": recovery,
        "elapsed": round(elapsed, 3),
        "coordinator": stats,
    }
