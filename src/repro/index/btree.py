"""A B-tree index (the paper's stand-in for MySQL's per-column B-trees).

Supports duplicate keys (each key maps to a list of payloads), point
lookup, range scans, insertion and deletion.  Used by
:mod:`repro.index.attribute_index` for node attributes and by the SQL
baseline engine for its table indexes.

The implementation follows the classic CLRS scheme with minimum degree
``t``: every node other than the root holds between ``t - 1`` and
``2t - 1`` keys; insertion splits full children on the way down; deletion
merges/borrows on the way down so recursion never underflows.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple


class _BNode:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[List[Any]] = []
        self.children: List["_BNode"] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTree:
    """An in-memory B-tree mapping comparable keys to lists of payloads."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("minimum degree must be >= 2")
        self._t = min_degree
        self._root = _BNode()
        self._len = 0  # number of (key, payload) entries

    def __len__(self) -> int:
        return self._len

    # -- search ---------------------------------------------------------------

    def get(self, key: Any) -> List[Any]:
        """All payloads stored under *key* (empty list when absent)."""
        node = self._root
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return list(node.values[index])
            if node.leaf:
                return []
            node = node.children[index]

    def __contains__(self, key: Any) -> bool:
        return bool(self.get(key))

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, payload)`` pairs with low <= key <= high, in order.

        ``None`` bounds are open ends; the include flags select strict or
        inclusive comparison, covering all of ``<, <=, >, >=`` pushdowns.
        """

        def visit(node: _BNode) -> Iterator[Tuple[Any, Any]]:
            for i, key in enumerate(node.keys):
                if not node.leaf:
                    yield from visit(node.children[i])
                if _in_range(key, low, high, include_low, include_high):
                    for payload in node.values[i]:
                        yield (key, payload)
                if high is not None and (key > high or (key == high and not include_high)):
                    return
            if not node.leaf:
                yield from visit(node.children[len(node.keys)])

        yield from visit(self._root)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All ``(key, payload)`` pairs in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        last_sentinel = object()
        last: Any = last_sentinel
        for key, _ in self.items():
            if last is last_sentinel or key != last:
                last = key
                yield key

    def min_key(self) -> Any:
        """The smallest key (ValueError when empty)."""
        if self._len == 0:
            raise ValueError("B-tree is empty")
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """The largest key (ValueError when empty)."""
        if self._len == 0:
            raise ValueError("B-tree is empty")
        node = self._root
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- insertion ------------------------------------------------------------

    def insert(self, key: Any, payload: Any) -> None:
        """Insert one payload under *key* (duplicates accumulate)."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _BNode()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, payload)
        self._len += 1

    def _split_child(self, parent: _BNode, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _BNode()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _BNode, key: Any, payload: Any) -> None:
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(payload)
                return
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, [payload])
                return
            child = node.children[index]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if key == node.keys[index]:
                    node.values[index].append(payload)
                    return
                if key > node.keys[index]:
                    index += 1
            node = node.children[index]

    # -- deletion -------------------------------------------------------------

    def delete(self, key: Any, payload: Any = None) -> bool:
        """Delete one payload (or the whole key when *payload* is None).

        Returns whether anything was removed.
        """
        existing = self.get(key)
        if not existing:
            return False
        if payload is not None:
            if payload not in existing:
                return False
            if len(existing) > 1:
                # just shrink the payload list in place
                self._replace_payloads(key, [p for p in existing if p != payload]
                                       + [payload for _ in range(existing.count(payload) - 1)])
                self._len -= 1
                return True
        removed_count = len(existing) if payload is None else 1
        self._delete_key(self._root, key)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        self._len -= removed_count
        return True

    def _replace_payloads(self, key: Any, payloads: List[Any]) -> None:
        node = self._root
        while True:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = payloads
                return
            node = node.children[index]

    def _delete_key(self, node: _BNode, key: Any) -> None:
        t = self._t
        index = _lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                pred_key, pred_values = _max_entry(left)
                node.keys[index] = pred_key
                node.values[index] = pred_values
                self._delete_key(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_values = _min_entry(right)
                node.keys[index] = succ_key
                node.values[index] = succ_values
                self._delete_key(right, succ_key)
            else:
                self._merge_children(node, index)
                self._delete_key(left, key)
            return
        if node.leaf:
            return  # key absent
        child = node.children[index]
        if len(child.keys) == t - 1:
            index = self._grow_child(node, index)
            child = node.children[index]
            # after restructuring, the key may now live in this node
            in_node = _lower_bound(node.keys, key)
            if in_node < len(node.keys) and node.keys[in_node] == key:
                self._delete_key(node, key)
                return
        self._delete_key(child, key)

    def _grow_child(self, node: _BNode, index: int) -> int:
        """Ensure child *index* has >= t keys; return its (new) index."""
        t = self._t
        child = node.children[index]
        if index > 0 and len(node.children[index - 1].keys) >= t:
            left = node.children[index - 1]
            child.keys.insert(0, node.keys[index - 1])
            child.values.insert(0, node.values[index - 1])
            node.keys[index - 1] = left.keys.pop()
            node.values[index - 1] = left.values.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(node.keys) and len(node.children[index + 1].keys) >= t:
            right = node.children[index + 1]
            child.keys.append(node.keys[index])
            child.values.append(node.values[index])
            node.keys[index] = right.keys.pop(0)
            node.values[index] = right.values.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            return index
        if index < len(node.keys):
            self._merge_children(node, index)
            return index
        self._merge_children(node, index - 1)
        return index - 1

    def _merge_children(self, node: _BNode, index: int) -> None:
        left = node.children[index]
        right = node.children[index + 1]
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(index + 1)

    # -- validation (for property tests) -----------------------------------------

    def validate(self) -> None:
        """Assert all B-tree invariants; raises AssertionError on violation."""
        t = self._t

        def check(node: _BNode, low: Any, high: Any, is_root: bool) -> int:
            assert len(node.keys) <= 2 * t - 1, "node overfull"
            if not is_root:
                assert len(node.keys) >= t - 1, "node underfull"
            for i in range(1, len(node.keys)):
                assert node.keys[i - 1] < node.keys[i], "keys out of order"
            for key in node.keys:
                if low is not None:
                    assert key > low, "key below subtree bound"
                if high is not None:
                    assert key < high, "key above subtree bound"
            assert len(node.values) == len(node.keys)
            if node.leaf:
                return 1
            assert len(node.children) == len(node.keys) + 1, "child count"
            depths = set()
            bounds = [low] + node.keys + [high]
            for i, child in enumerate(node.children):
                depths.add(check(child, bounds[i], bounds[i + 1], False))
            assert len(depths) == 1, "uneven leaf depth"
            return depths.pop() + 1

        check(self._root, None, None, True)
        assert sum(len(v) for _, v in _entries(self._root)) == self._len


def _entries(node: _BNode):
    for i, key in enumerate(node.keys):
        if not node.leaf:
            yield from _entries(node.children[i])
        yield (key, node.values[i])
    if not node.leaf:
        yield from _entries(node.children[-1])


def _max_entry(node: _BNode) -> Tuple[Any, List[Any]]:
    while not node.leaf:
        node = node.children[-1]
    return node.keys[-1], node.values[-1]


def _min_entry(node: _BNode) -> Tuple[Any, List[Any]]:
    while not node.leaf:
        node = node.children[0]
    return node.keys[0], node.values[0]


def _lower_bound(keys: List[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _in_range(key, low, high, include_low, include_high) -> bool:
    if low is not None:
        if key < low or (key == low and not include_low):
            return False
    if high is not None:
        if key > high or (key == high and not include_high):
            return False
    return True
