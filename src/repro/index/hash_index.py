"""A hash index from attribute value to node ids.

The paper indexes node labels with a hashtable when retrieving feasible
mates (Section 5.1: "We index the node labels using a hashtable").
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple


class HashIndex:
    """Exact-match index: value -> list of payloads."""

    def __init__(self) -> None:
        self._buckets: Dict[Any, List[Any]] = {}
        self._len = 0

    def insert(self, key: Any, payload: Any) -> None:
        """Add one payload under *key*."""
        self._buckets.setdefault(key, []).append(payload)
        self._len += 1

    def get(self, key: Any) -> List[Any]:
        """All payloads for *key* (empty list when absent)."""
        return list(self._buckets.get(key, ()))

    def delete(self, key: Any, payload: Any = None) -> bool:
        """Remove one payload (or the whole key); returns success."""
        if key not in self._buckets:
            return False
        if payload is None:
            self._len -= len(self._buckets[key])
            del self._buckets[key]
            return True
        bucket = self._buckets[key]
        if payload not in bucket:
            return False
        bucket.remove(payload)
        self._len -= 1
        if not bucket:
            del self._buckets[key]
        return True

    def keys(self) -> Iterator[Any]:
        """All distinct keys (arbitrary order)."""
        return iter(self._buckets)

    def items(self) -> Iterator[Tuple[Any, List[Any]]]:
        """All ``(key, payload-list)`` pairs."""
        return iter(self._buckets.items())

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets

    def __len__(self) -> int:
        return self._len
