"""Per-attribute indexes over the nodes of a graph (Section 4.2).

*"Node attributes can be indexed directly using traditional index
structures such as B-trees.  This allows for fast retrieval of feasible
mates and avoids a full scan of all nodes."*

:class:`AttributeIndexSet` maintains one B-tree per indexed attribute name
and answers the *indexable* part of a pattern-node predicate:

* declarative tuple constraints ``<label="A">`` become point lookups;
* pushed-down comparisons ``where year > 2000`` become range scans.

Anything not indexable is re-checked by the caller, so index retrieval is
always a superset of the true feasible mates before F_u filtering.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.graph import Graph
from ..core.predicate import AttrRef, BinOp, Expr, Literal
from .btree import BTree


class AttributeIndexSet:
    """B-tree indexes over selected node attributes of one graph."""

    def __init__(self, graph: Graph, attributes: Optional[List[str]] = None) -> None:
        self.graph = graph
        self._trees: Dict[str, BTree] = {}
        if attributes is None:
            attributes = sorted(self._discover_attributes(graph))
        for attr in attributes:
            self.build(attr)

    @staticmethod
    def _discover_attributes(graph: Graph) -> Set[str]:
        names: Set[str] = set()
        for node in graph.nodes():
            names.update(node.tuple.names())
        return names

    def build(self, attr: str) -> None:
        """(Re)build the index for one attribute name."""
        tree = BTree()
        for node in self.graph.nodes():
            value = node.get(attr)
            if value is not None:
                tree.insert(_typed_key(value), node.id)
        self._trees[attr] = tree

    def has_index(self, attr: str) -> bool:
        """Whether the attribute is indexed."""
        return attr in self._trees

    def attributes(self) -> List[str]:
        """Indexed attribute names."""
        return list(self._trees)

    def lookup_eq(self, attr: str, value: Any) -> List[str]:
        """Node ids whose attribute equals *value*."""
        return self._trees[attr].get(_typed_key(value))

    def lookup_range(
        self,
        attr: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[str]:
        """Node ids whose attribute lies in the given range."""
        tree = self._trees[attr]
        return [
            payload
            for _, payload in tree.range(
                _typed_key(low) if low is not None else None,
                _typed_key(high) if high is not None else None,
                include_low,
                include_high,
            )
        ]

    # -- predicate-driven retrieval ------------------------------------------------

    def candidates_for(
        self,
        required_attrs: Dict[str, Any],
        predicate: Optional[Expr] = None,
    ) -> Optional[List[str]]:
        """Candidate node ids for a pattern node, via the best usable index.

        Chooses the most selective indexable condition (smallest result).
        Returns ``None`` when nothing is indexable, in which case the
        caller falls back to a full scan.
        """
        options: List[List[str]] = []
        for attr, value in required_attrs.items():
            if self.has_index(attr):
                options.append(self.lookup_eq(attr, value))
        for condition in _indexable_conditions(predicate):
            attr, op, value = condition
            if not self.has_index(attr):
                continue
            if op == "==":
                options.append(self.lookup_eq(attr, value))
            elif op == ">":
                options.append(self.lookup_range(attr, low=value, include_low=False))
            elif op == ">=":
                options.append(self.lookup_range(attr, low=value))
            elif op == "<":
                options.append(self.lookup_range(attr, high=value, include_high=False))
            elif op == "<=":
                options.append(self.lookup_range(attr, high=value))
        if not options:
            return None
        return min(options, key=len)


def _typed_key(value: Any) -> Tuple[str, Any]:
    """Make keys totally ordered even across value types."""
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", value)
    return (type(value).__name__, value)


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


def _indexable_conditions(predicate: Optional[Expr]):
    """Extract ``attr OP literal`` conjuncts usable by an index.

    Handles both orientations (``year > 2000`` and ``2000 < year``) and
    only single-step references (a bare attribute name or ``u.attr``; the
    last path element is the attribute).
    """
    if predicate is None:
        return
    for conjunct in predicate.conjuncts():
        if not isinstance(conjunct, BinOp):
            continue
        op = conjunct.op
        if op not in ("==", ">", ">=", "<", "<="):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, AttrRef) and isinstance(right, Literal):
            yield (left.path[-1], op, right.value)
        elif isinstance(left, Literal) and isinstance(right, AttrRef):
            yield (right.path[-1], _FLIP[op], left.value)
