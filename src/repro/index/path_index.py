"""Path-feature index for collections of small graphs.

Section 4 splits graph databases into two categories.  This module covers
the first — *"a large collection of small graphs, e.g., chemical
compounds"* — where *"graph indexing plays a similar role for graph
databases as B-trees for relational databases: only a small number of
graphs need to be accessed"*.

The index follows the GraphGrep recipe the paper cites [34]: every label
path up to a fixed length is a feature; a collection graph can contain
the pattern only if it contains at least as many occurrences of every
pattern feature.  Selection then becomes **filter + verify**: the index
prunes the collection, the Section 4 matcher verifies the survivors.

The filter is sound (an embedding maps each pattern path to a distinct
data path with the same labels, so counts can only grow) and approximate
(survivors may still fail verification).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from ..core.collection import GraphCollection
from ..core.graph import Graph
from ..core.pattern import GroundPattern
from ..matching.neighborhood import LabelFn, default_label

PathFeature = Tuple[Any, ...]


def _seq_key(sequence: PathFeature) -> Tuple:
    return tuple((type(x).__name__, str(x)) for x in sequence)


def _canonical(sequence: PathFeature, directed: bool) -> PathFeature:
    """Undirected paths are read in either direction: pick one."""
    if directed:
        return sequence
    return min(sequence, tuple(reversed(sequence)), key=_seq_key)


def _enumerate_paths(
    node_ids,
    neighbors_fn,
    label_of,
    max_length: int,
    directed: bool,
) -> Counter:
    """Count simple label paths with up to *max_length* edges.

    Undirected paths are enumerated once: a traversal is counted only
    when its first node id is smaller than its last (each simple path of
    length >= 1 has two distinct end points, so exactly one of its two
    traversals qualifies).  Directed paths count every traversal.
    """
    features: Counter = Counter()

    def extend(path: List) -> None:
        if len(path) == 1:
            features[(label_of(path[0]),)] += 1
        elif directed or path[0] < path[-1]:
            sequence = tuple(label_of(n) for n in path)
            features[_canonical(sequence, directed)] += 1
        if len(path) > max_length:
            return
        for neighbor in neighbors_fn(path[-1]):
            if neighbor not in path:
                path.append(neighbor)
                extend(path)
                path.pop()

    for node_id in node_ids:
        extend([node_id])
    return features


def enumerate_label_paths(
    graph: Graph,
    max_length: int,
    label_fn: LabelFn = default_label,
) -> Counter:
    """Count the label paths of a data graph (the index features)."""
    labels = {node.id: label_fn(node) for node in graph.nodes()}
    return _enumerate_paths(
        graph.node_ids(),
        graph.neighbors,
        labels.__getitem__,
        max_length,
        graph.directed,
    )


def pattern_features(
    pattern: GroundPattern,
    max_length: int,
    label_attr: str = "label",
    directed: bool = False,
) -> Counter:
    """Label-path features a pattern *requires* of any containing graph.

    Only paths whose nodes all carry a declarative label constraint
    contribute (an unconstrained node matches anything and cannot prune).
    """
    motif = pattern.motif
    constrained = {
        name: motif.node(name).attrs[label_attr]
        for name in motif.node_names()
        if label_attr in motif.node(name).attrs
    }

    def neighbors(name: str) -> List[str]:
        return [n for n in motif.neighbors(name) if n in constrained]

    return _enumerate_paths(
        list(constrained),
        neighbors,
        constrained.__getitem__,
        max_length,
        directed,
    )


class PathIndexStats:
    """Filter effectiveness counters."""

    def __init__(self) -> None:
        self.collection_size = 0
        self.candidates = 0
        self.verified = 0

    @property
    def filter_ratio(self) -> float:
        """Fraction of the collection surviving the filter."""
        if self.collection_size == 0:
            return 0.0
        return self.candidates / self.collection_size

    def __repr__(self) -> str:
        return (
            f"PathIndexStats({self.candidates}/{self.collection_size} "
            f"candidates, {self.verified} verified)"
        )


class PathIndex:
    """A GraphGrep-style filter index over a collection of small graphs."""

    def __init__(
        self,
        collection: GraphCollection,
        max_length: int = 3,
        label_fn: LabelFn = default_label,
    ) -> None:
        self.collection = collection
        self.max_length = max_length
        self.label_fn = label_fn
        self._directed = any(g.directed for g in collection)
        self._features: List[Counter] = [
            enumerate_label_paths(graph, max_length, label_fn)
            for graph in collection
        ]
        # inverted index: feature -> graph positions containing it
        self._inverted: Dict[PathFeature, List[int]] = {}
        for position, counter in enumerate(self._features):
            for feature in counter:
                self._inverted.setdefault(feature, []).append(position)

    def candidate_positions(
        self,
        pattern: GroundPattern,
        label_attr: str = "label",
        stats: Optional[PathIndexStats] = None,
    ) -> List[int]:
        """Collection positions that may contain the pattern."""
        required = pattern_features(pattern, self.max_length, label_attr,
                                    self._directed)
        if stats is not None:
            stats.collection_size = len(self.collection)
        if not required:
            candidates = list(range(len(self.collection)))
        else:
            # start from the rarest feature's posting list
            rarest = min(
                required, key=lambda f: len(self._inverted.get(f, ()))
            )
            candidates = [
                position
                for position in self._inverted.get(rarest, [])
                if all(
                    self._features[position][feature] >= count
                    for feature, count in required.items()
                )
            ]
        if stats is not None:
            stats.candidates = len(candidates)
        return candidates

    def select(
        self,
        pattern: GroundPattern,
        exhaustive: bool = True,
        label_attr: str = "label",
        stats: Optional[PathIndexStats] = None,
    ) -> GraphCollection:
        """Filter-and-verify selection over the collection."""
        from ..core.algebra import select as verify_select

        positions = self.candidate_positions(pattern, label_attr, stats)
        survivors = GraphCollection([self.collection[p] for p in positions])
        result = verify_select(survivors, pattern, exhaustive=exhaustive)
        if stats is not None:
            stats.verified = len(result)
        return result

    def __repr__(self) -> str:
        return (
            f"PathIndex(graphs={len(self.collection)}, "
            f"max_length={self.max_length}, "
            f"features={len(self._inverted)})"
        )
