"""Precomputed neighborhood subgraphs and profiles for a data graph.

Section 5.1: *"We index the node labels using a hashtable, and store the
neighborhood subgraphs and profiles with radius 1 as well."*  This module
is that store: per node, the profile (always precomputed — it is cheap)
and the neighborhood subgraph (computed lazily and cached — it is big).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.graph import Graph
from ..matching.neighborhood import (
    LabelFn,
    default_label,
    neighborhood_subgraph,
    profile,
)
from .hash_index import HashIndex


class ProfileIndex:
    """Per-node profiles, neighborhood subgraphs and a label hash index."""

    def __init__(
        self,
        graph: Graph,
        radius: int = 1,
        label_fn: LabelFn = default_label,
        eager_subgraphs: bool = False,
    ) -> None:
        self.graph = graph
        self.radius = radius
        self.label_fn = label_fn
        self.label_index = HashIndex()
        self._profiles: Dict[str, Tuple[Any, ...]] = {}
        self._subgraphs: Dict[str, Graph] = {}
        for node in graph.nodes():
            self.label_index.insert(label_fn(node), node.id)
            self._profiles[node.id] = profile(graph, node.id, radius, label_fn)
            if eager_subgraphs:
                self._subgraphs[node.id] = neighborhood_subgraph(
                    graph, node.id, radius
                )

    def profile_of(self, node_id: str) -> Tuple[Any, ...]:
        """The stored profile of a node."""
        return self._profiles[node_id]

    def subgraph_of(self, node_id: str) -> Graph:
        """The neighborhood subgraph of a node (cached)."""
        cached = self._subgraphs.get(node_id)
        if cached is None:
            cached = neighborhood_subgraph(self.graph, node_id, self.radius)
            self._subgraphs[node_id] = cached
        return cached

    def nodes_with_label(self, label: Any) -> list:
        """Node ids carrying the given label (hashtable lookup)."""
        return self.label_index.get(label)

    def __repr__(self) -> str:
        return (
            f"ProfileIndex(radius={self.radius}, "
            f"nodes={len(self._profiles)})"
        )
