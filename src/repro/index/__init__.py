"""Index structures: B-trees, hash indexes, attribute and profile stores."""

from .attribute_index import AttributeIndexSet
from .btree import BTree
from .hash_index import HashIndex
from .path_index import (
    PathIndex,
    PathIndexStats,
    enumerate_label_paths,
    pattern_features,
)
from .profile_index import ProfileIndex

__all__ = [
    "AttributeIndexSet",
    "BTree",
    "HashIndex",
    "PathIndex",
    "PathIndexStats",
    "enumerate_label_paths",
    "pattern_features",
    "ProfileIndex",
]
