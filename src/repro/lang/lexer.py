"""Tokenizer for the GraphQL concrete syntax (Appendix 4.A).

Keywords are case-sensitive (all lowercase, as in the paper's examples).
``=`` is accepted both as the tuple assignment and — for compatibility
with the paper's examples like ``where v1.name="A"`` — as an equality
comparison; the parser normalizes it by context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from .errors import GraphQLSyntaxError

KEYWORDS = {
    "graph",
    "node",
    "edge",
    "unify",
    "where",
    "export",
    "as",
    "for",
    "exhaustive",
    "in",
    "doc",
    "let",
    "return",
}

#: Multi-character symbols, longest first so maximal munch works.
MULTI_SYMBOLS = [":=", "==", "!=", "<=", ">=", "<>"]
SINGLE_SYMBOLS = set("{}()<>,;.|&+-*/=")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # 'keyword' | 'id' | 'int' | 'float' | 'string' | 'symbol' | 'eof'
    value: Any
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize GraphQL source text (supports ``//`` and ``#`` comments)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    position = 0
    length = len(text)

    def error(message: str) -> GraphQLSyntaxError:
        return GraphQLSyntaxError(message, line, column)

    while position < length:
        ch = text[position]
        if ch == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if ch.isspace():
            position += 1
            column += 1
            continue
        if ch == "#" or text.startswith("//", position):
            while position < length and text[position] != "\n":
                position += 1
            continue
        start_line, start_column = line, column
        # strings
        if ch in "\"'":
            quote = ch
            position += 1
            column += 1
            chars: List[str] = []
            while position < length and text[position] != quote:
                if text[position] == "\\" and position + 1 < length:
                    chars.append(text[position + 1])
                    position += 2
                    column += 2
                    continue
                if text[position] == "\n":
                    raise error("unterminated string")
                chars.append(text[position])
                position += 1
                column += 1
            if position >= length:
                raise error("unterminated string")
            position += 1
            column += 1
            tokens.append(Token("string", "".join(chars), start_line, start_column))
            continue
        # numbers (ASCII digits only: str.isdigit accepts unicode digits
        # such as superscripts that int() rejects)
        if "0" <= ch <= "9":
            end = position
            seen_dot = False
            while end < length and (
                "0" <= text[end] <= "9" or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # a dot is part of the number only if a digit follows
                    if end + 1 >= length or not ("0" <= text[end + 1] <= "9"):
                        break
                    seen_dot = True
                end += 1
            raw = text[position:end]
            kind = "float" if "." in raw else "int"
            value = float(raw) if kind == "float" else int(raw)
            tokens.append(Token(kind, value, start_line, start_column))
            column += end - position
            position = end
            continue
        # identifiers / keywords: [A-Za-z_][A-Za-z0-9_]* per the grammar
        if ("a" <= ch <= "z") or ("A" <= ch <= "Z") or ch == "_":
            end = position
            while end < length and (
                ("a" <= text[end] <= "z") or ("A" <= text[end] <= "Z")
                or ("0" <= text[end] <= "9") or text[end] == "_"
            ):
                end += 1
            word = text[position:end]
            kind = "keyword" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, start_line, start_column))
            column += end - position
            position = end
            continue
        # symbols
        matched = None
        for symbol in MULTI_SYMBOLS:
            if text.startswith(symbol, position):
                matched = symbol
                break
        if matched is None and ch in SINGLE_SYMBOLS:
            matched = ch
        if matched is None:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token("symbol", matched, start_line, start_column))
        position += len(matched)
        column += len(matched)
    tokens.append(Token("eof", None, line, column))
    return tokens
