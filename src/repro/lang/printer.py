"""Pretty-printing core objects back to GraphQL concrete syntax.

Ground patterns and templates render to parseable text, enabling
pattern round-trips (compile → print → compile) and readable logs of
compiled query plans.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.motif import SimpleMotif
from ..core.pattern import GraphPattern, GroundPattern
from ..core.predicate import Expr


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(value)


def _format_constraints(tag: Optional[str], attrs: Dict[str, Any]) -> str:
    if tag is None and not attrs:
        return ""
    parts: List[str] = []
    if tag is not None:
        parts.append(tag)
    parts.extend(f"{name}={_format_value(value)}"
                 for name, value in attrs.items())
    return " <" + " ".join(parts) + ">"


def _format_where(predicate: Optional[Expr]) -> str:
    if predicate is None:
        return ""
    return f" where {predicate.to_graphql()}"


def _safe_name(name: str) -> str:
    """Motif names may contain dots after flattening; quote-free rename."""
    return name.replace(".", "_")


def motif_to_text(motif: SimpleMotif, name: Optional[str] = None) -> str:
    """Render a ground motif as a graph declaration body."""
    rename = {n: _safe_name(n) for n in motif.node_names()}
    header = f"graph {name} {{" if name else "graph {"
    lines = [header]
    for node in motif.nodes():
        lines.append(
            f"  node {rename[node.name]}"
            f"{_format_constraints(node.tag, node.attrs)}"
            f"{_format_where(node.predicate)};"
        )
    for index, edge in enumerate(motif.edges()):
        edge_name = _safe_name(edge.name) if not edge.name.startswith("_") \
            else f"e{index + 1}"
        lines.append(
            f"  edge {edge_name} ({rename[edge.source]}, "
            f"{rename[edge.target]})"
            f"{_format_constraints(edge.tag, edge.attrs)}"
            f"{_format_where(edge.predicate)};"
        )
    lines.append("}")
    return "\n".join(lines)


def pattern_to_text(pattern: GroundPattern) -> str:
    """Render a ground pattern, including its graph-wide predicate.

    Node names containing dots (from motif flattening) are rewritten with
    underscores consistently across structure and predicate, so the text
    re-parses; matches are therefore equal up to that renaming.
    """
    body = motif_to_text(pattern.motif, pattern.name)
    where = pattern.predicate
    if where is None:
        return body
    text = where.to_graphql()
    for node_name in pattern.motif.node_names():
        if "." in node_name:
            text = text.replace(node_name, _safe_name(node_name))
    return f"{body} where {text}"


def graph_pattern_to_text(pattern: GraphPattern) -> str:
    """Render a (possibly disjunctive) pattern as alternative blocks."""
    grounds = pattern.ground() if not pattern.is_recursive() else None
    if grounds is None:
        raise ValueError("recursive patterns need a grammar to print; "
                         "print their ground derivations instead")
    blocks = []
    for ground in grounds:
        text = motif_to_text(ground.motif)
        blocks.append(text[len("graph "):] if text.startswith("graph ")
                      else text)
    name = f" {pattern.name}" if pattern.name else ""
    joined = "\n| ".join(blocks)
    where = f" where {pattern.where.to_graphql()}" if pattern.where else ""
    return f"graph{name} {joined}{where}"
