"""Errors raised by the GraphQL language front-end."""

from __future__ import annotations


class GraphQLSyntaxError(ValueError):
    """A lexing or parsing error, carrying source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(
            f"{message} (line {line}, column {column})" if line else message
        )
        self.line = line
        self.column = column


class GraphQLCompileError(ValueError):
    """A semantic error while compiling the AST to core objects.

    Like :class:`GraphQLSyntaxError`, carries the 1-based source position
    of the offending construct (0/0 when the AST was built
    programmatically and has no spans).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(
            f"{message} (line {line}, column {column})" if line else message
        )
        self.line = line
        self.column = column
