"""Recursive-descent parser for GraphQL (Appendix 4.A grammar).

Extensions beyond the appendix, all used by the paper's own figures:

* anonymous block disjunction inside a body — ``{...} | {...}``
  (Figs. 4.5, 4.6);
* ``export <path> as <id>;`` members (Fig. 4.6);
* ``graph G1 as X;`` member aliases (Fig. 4.4);
* ``=`` accepted as equality in expressions (Fig. 4.8 writes
  ``v1.name="A"``), normalized to ``==``;
* ``let C := template`` (the appendix writes ``=``; Fig. 4.12 writes
  ``:=`` — both accepted);
* optional commas between tuple entries (Fig. 4.7).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.predicate import AttrRef, BinOp, Expr, Literal
from .ast import (
    AssignAst,
    BlockAst,
    EdgeDeclAst,
    ExportAst,
    FLWRAst,
    GraphDeclAst,
    GraphMemberAst,
    NestedBlocksAst,
    NodeDeclAst,
    ProgramAst,
    TupleAst,
    UnifyAst,
)
from .errors import GraphQLSyntaxError
from .lexer import Token, tokenize


class Parser:
    """Parses GraphQL text into a :class:`ProgramAst`."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def _error(self, message: str) -> GraphQLSyntaxError:
        token = self._peek()
        return GraphQLSyntaxError(
            f"{message}, got {token.value!r}", token.line, token.column
        )

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._next()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            raise self._error(f"expected {value or kind}")
        return token

    def _at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    @staticmethod
    def _spanned(node: Any, token: Token) -> Any:
        """Stamp a node (AST or Expr) with a start-token position."""
        node.line = token.line
        node.column = token.column
        return node

    @staticmethod
    def _expr_at(expr: Expr, token: Token) -> Expr:
        """Stamp an expression's position unless it already has one."""
        if expr.pos is None:
            expr.pos = (token.line, token.column)
        return expr

    @staticmethod
    def _with_pos(expr: Expr, pos: Tuple[int, int]) -> Expr:
        """Stamp an expression with an explicit position."""
        expr.pos = pos
        return expr

    # -- entry points --------------------------------------------------------------

    def parse_program(self) -> ProgramAst:
        """``Start ::= ( GraphPattern ";" | FLWRExpr ";" | Assign ";" )* EOF``."""
        program = ProgramAst()
        while not self._at("eof"):
            program.statements.append(self._statement())
        return program

    def parse_graph(self) -> GraphDeclAst:
        """Parse a single graph declaration (for data files)."""
        decl = self._graph_decl()
        self._accept("symbol", ";")
        if not self._at("eof"):
            raise self._error("trailing input after graph declaration")
        return decl

    def parse_expression(self) -> Expr:
        """Parse a standalone predicate expression."""
        expr = self._expr()
        if not self._at("eof"):
            raise self._error("trailing input after expression")
        return expr

    # -- statements ------------------------------------------------------------------

    def _statement(self) -> Any:
        if self._at("keyword", "for"):
            statement = self._flwr()
            self._accept("symbol", ";")
            return statement
        if self._at("keyword", "graph"):
            statement = self._graph_decl()
            self._accept("symbol", ";")
            return statement
        if self._at("id") and self._peek(1).kind == "symbol" and self._peek(1).value == ":=":
            start = self._peek()
            name = self._expect("id").value
            self._expect("symbol", ":=")
            value = self._graph_decl()
            self._accept("symbol", ";")
            return self._spanned(AssignAst(name, value), start)
        raise self._error("expected a graph declaration, assignment or for")

    # -- graph declarations -------------------------------------------------------------

    def _graph_decl(self) -> GraphDeclAst:
        start = self._expect("keyword", "graph")
        name = None
        if self._at("id"):
            name = self._next().value
        tuple_ast = self._tuple() if self._at("symbol", "<") else None
        blocks = [self._block()]
        while self._accept("symbol", "|"):
            blocks.append(self._block())
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        return self._spanned(GraphDeclAst(name, tuple_ast, blocks, where),
                             start)

    def _block(self) -> BlockAst:
        start = self._expect("symbol", "{")
        block = self._spanned(BlockAst(), start)
        while not self._at("symbol", "}"):
            block.members.append(self._member())
        self._expect("symbol", "}")
        return block

    def _member(self) -> Any:
        if self._at("keyword", "node"):
            return self._node_member()
        if self._at("keyword", "edge"):
            return self._edge_member()
        if self._at("keyword", "graph"):
            return self._graph_member()
        if self._at("keyword", "unify"):
            return self._unify_member()
        if self._at("keyword", "export"):
            return self._export_member()
        if self._at("symbol", "{"):
            start = self._peek()
            blocks = [self._block()]
            while self._accept("symbol", "|"):
                blocks.append(self._block())
            self._accept("symbol", ";")
            return self._spanned(NestedBlocksAst(blocks), start)
        raise self._error("expected a member declaration")

    def _node_member(self) -> List[NodeDeclAst]:
        self._expect("keyword", "node")
        decls = [self._node_decl()]
        while self._accept("symbol", ","):
            decls.append(self._node_decl())
        self._expect("symbol", ";")
        return decls

    def _node_decl(self) -> NodeDeclAst:
        start = self._peek()
        name = None
        if self._at("id"):
            name = self._names()
        tuple_ast = self._tuple() if self._at("symbol", "<") else None
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        return self._spanned(NodeDeclAst(name, tuple_ast, where), start)

    def _edge_member(self) -> List[EdgeDeclAst]:
        self._expect("keyword", "edge")
        decls = [self._edge_decl()]
        while self._accept("symbol", ","):
            decls.append(self._edge_decl())
        self._expect("symbol", ";")
        return decls

    def _edge_decl(self) -> EdgeDeclAst:
        start = self._peek()
        name = None
        if self._at("id"):
            name = self._next().value
        self._expect("symbol", "(")
        source = self._names()
        self._expect("symbol", ",")
        target = self._names()
        self._expect("symbol", ")")
        tuple_ast = self._tuple() if self._at("symbol", "<") else None
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        return self._spanned(
            EdgeDeclAst(name, source, target, tuple_ast, where), start)

    def _graph_member(self) -> GraphMemberAst:
        start = self._expect("keyword", "graph")
        refs: List[Tuple[str, Optional[str]]] = []
        while True:
            ref = self._expect("id").value
            alias = None
            if self._accept("keyword", "as"):
                alias = self._expect("id").value
            refs.append((ref, alias))
            if not self._accept("symbol", ","):
                break
        self._expect("symbol", ";")
        return self._spanned(GraphMemberAst(refs), start)

    def _unify_member(self) -> UnifyAst:
        start = self._expect("keyword", "unify")
        paths = [self._names()]
        while self._accept("symbol", ","):
            paths.append(self._names())
        if len(paths) < 2:
            raise self._error("unify needs at least two names")
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        self._expect("symbol", ";")
        return self._spanned(UnifyAst(paths, where), start)

    def _export_member(self) -> ExportAst:
        start = self._expect("keyword", "export")
        path = self._names()
        self._expect("keyword", "as")
        alias = self._expect("id").value
        self._expect("symbol", ";")
        return self._spanned(ExportAst(path, alias), start)

    # -- tuples ----------------------------------------------------------------------------

    def _tuple(self) -> TupleAst:
        start = self._expect("symbol", "<")
        tuple_ast = self._spanned(TupleAst(), start)
        # optional tag: an id NOT followed by '='
        if self._at("id") and not (
            self._peek(1).kind == "symbol" and self._peek(1).value == "="
        ):
            tuple_ast.tag = self._next().value
        while not self._at("symbol", ">"):
            self._accept("symbol", ",")  # commas are optional separators
            if self._at("symbol", ">"):
                break
            name = self._expect("id").value
            self._expect("symbol", "=")
            value = self._expr(stop_at_gt=True)
            tuple_ast.entries.append((name, value))
        self._expect("symbol", ">")
        return tuple_ast

    # -- FLWR -------------------------------------------------------------------------------

    def _flwr(self) -> FLWRAst:
        start = self._expect("keyword", "for")
        binding_name = None
        pattern = None
        if self._at("keyword", "graph"):
            pattern = self._graph_decl()
        else:
            binding_name = self._expect("id").value
        exhaustive = bool(self._accept("keyword", "exhaustive"))
        self._expect("keyword", "in")
        self._expect("keyword", "doc")
        self._expect("symbol", "(")
        source = self._expect("string").value
        self._expect("symbol", ")")
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        if self._accept("keyword", "return"):
            template = self._template_ref_or_decl()
            return self._spanned(
                FLWRAst(binding_name, pattern, exhaustive, source, where,
                        None, template), start)
        self._expect("keyword", "let")
        let_var = self._expect("id").value
        if not (self._accept("symbol", ":=") or self._accept("symbol", "=")):
            raise self._error("expected := or = after let variable")
        template = self._template_ref_or_decl()
        return self._spanned(
            FLWRAst(binding_name, pattern, exhaustive, source, where,
                    let_var, template), start)

    def _template_ref_or_decl(self) -> GraphDeclAst:
        if self._at("keyword", "graph"):
            return self._graph_decl()
        # bare identifier: a template that simply returns a bound graph
        name = self._expect("id").value
        block = BlockAst(members=[GraphMemberAst([(name, None)])])
        return GraphDeclAst(None, None, [block], None)

    # -- expressions (precedence climbing) -------------------------------------------------------

    def _expr(self, stop_at_gt: bool = False) -> Expr:
        return self._or_expr(stop_at_gt)

    def _or_expr(self, stop_at_gt: bool) -> Expr:
        left = self._and_expr(stop_at_gt)
        while self._at("symbol", "|"):
            op_token = self._next()
            right = self._and_expr(stop_at_gt)
            left = self._with_pos(BinOp("|", left, right),
                                  left.pos or (op_token.line,
                                               op_token.column))
        return left

    def _and_expr(self, stop_at_gt: bool) -> Expr:
        left = self._cmp_expr(stop_at_gt)
        while self._at("symbol", "&"):
            op_token = self._next()
            right = self._cmp_expr(stop_at_gt)
            left = self._with_pos(BinOp("&", left, right),
                                  left.pos or (op_token.line,
                                               op_token.column))
        return left

    _CMP = {"==": "==", "=": "==", "!=": "!=", "<>": "!=",
            "<": "<", "<=": "<=", ">": ">", ">=": ">="}

    def _cmp_expr(self, stop_at_gt: bool) -> Expr:
        left = self._add_expr(stop_at_gt)
        token = self._peek()
        if token.kind == "symbol" and token.value in self._CMP:
            if stop_at_gt and token.value == ">":
                return left  # '>' closes the tuple here
            self._next()
            right = self._add_expr(stop_at_gt)
            return self._with_pos(
                BinOp(self._CMP[token.value], left, right),
                left.pos or (token.line, token.column))
        return left

    def _add_expr(self, stop_at_gt: bool) -> Expr:
        left = self._mul_expr(stop_at_gt)
        while self._at("symbol", "+") or self._at("symbol", "-"):
            op_token = self._next()
            right = self._mul_expr(stop_at_gt)
            left = self._with_pos(
                BinOp(op_token.value, left, right),
                left.pos or (op_token.line, op_token.column))
        return left

    def _mul_expr(self, stop_at_gt: bool) -> Expr:
        left = self._term(stop_at_gt)
        while self._at("symbol", "*") or self._at("symbol", "/"):
            op_token = self._next()
            right = self._term(stop_at_gt)
            left = self._with_pos(
                BinOp(op_token.value, left, right),
                left.pos or (op_token.line, op_token.column))
        return left

    def _term(self, stop_at_gt: bool) -> Expr:
        if self._accept("symbol", "("):
            inner = self._expr()
            self._expect("symbol", ")")
            return inner
        if self._at("symbol", "-"):
            minus = self._next()
            inner = self._term(stop_at_gt)
            return self._expr_at(BinOp("-", Literal(0), inner), minus)
        token = self._peek()
        if token.kind in ("int", "float", "string"):
            self._next()
            return self._expr_at(Literal(token.value), token)
        if token.kind in ("id", "keyword"):
            # keywords like 'doc' may appear as attribute names in paths
            return self._expr_at(AttrRef(tuple(self._names().split("."))),
                                 token)
        raise self._error("expected an expression term")

    # -- names --------------------------------------------------------------------------------------

    def _names(self) -> str:
        token = self._peek()
        if token.kind not in ("id", "keyword"):
            raise self._error("expected a name")
        parts = [self._next().value]
        while self._at("symbol", ".") and self._peek(1).kind in ("id", "keyword"):
            self._next()
            parts.append(self._next().value)
        return ".".join(parts)


def parse_program(text: str) -> ProgramAst:
    """Parse a GraphQL source file into its AST."""
    return Parser(text).parse_program()


def parse_graph_decl(text: str) -> GraphDeclAst:
    """Parse a single graph declaration."""
    return Parser(text).parse_graph()


def parse_expression(text: str) -> Expr:
    """Parse a predicate expression."""
    return Parser(text).parse_expression()
