"""The GraphQL language front-end: lexer, parser, compiler."""

from .compiler import (
    CompiledProgram,
    compile_graph,
    compile_graph_text,
    compile_motif,
    compile_pattern,
    compile_pattern_text,
    compile_program,
    compile_template,
)
from .errors import GraphQLCompileError, GraphQLSyntaxError
from .lexer import Token, tokenize
from .parser import Parser, parse_expression, parse_graph_decl, parse_program

__all__ = [
    "CompiledProgram",
    "compile_graph",
    "compile_graph_text",
    "compile_motif",
    "compile_pattern",
    "compile_pattern_text",
    "compile_program",
    "compile_template",
    "GraphQLCompileError",
    "GraphQLSyntaxError",
    "Token",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_graph_decl",
    "parse_program",
]
