"""Syntactic AST for the GraphQL language (Appendix 4.A).

These classes mirror the grammar productions one-to-one; the compiler
(:mod:`repro.lang.compiler`) lowers them to core objects (graphs, motifs,
patterns, templates, FLWR programs).  Expressions reuse the core
predicate AST (:mod:`repro.core.predicate`) — the concrete and abstract
expression syntax coincide.

Every node carries the 1-based ``line``/``column`` of the token that
started its production (0 when synthesized rather than parsed), which is
what the semantic analyzer (:mod:`repro.analysis`) and compile errors
report as source spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.predicate import Expr


@dataclass
class TupleAst:
    """``<tag name=expr ...>`` — attribute tuple literal/template."""

    tag: Optional[str] = None
    entries: List[Tuple[str, Expr]] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass
class NodeDeclAst:
    """One node declarator: ``v1 <author name="A"> where year > 2000``.

    ``name`` may be dotted (``P.v1``) inside template bodies.
    """

    name: Optional[str]
    tuple: Optional[TupleAst] = None
    where: Optional[Expr] = None
    line: int = 0
    column: int = 0


@dataclass
class EdgeDeclAst:
    """``e1 (v1, v2) <tuple> where ...`` — end points may be dotted."""

    name: Optional[str]
    source: str = ""
    target: str = ""
    tuple: Optional[TupleAst] = None
    where: Optional[Expr] = None
    line: int = 0
    column: int = 0


@dataclass
class GraphMemberAst:
    """``graph G1 as X;`` members (refs to named graphs / parameters)."""

    refs: List[Tuple[str, Optional[str]]]  # (name, alias)
    line: int = 0
    column: int = 0


@dataclass
class UnifyAst:
    """``unify a, b [, c ...] [where expr];``"""

    paths: List[str]
    where: Optional[Expr] = None
    line: int = 0
    column: int = 0


@dataclass
class ExportAst:
    """``export Path.v2 as v2;``"""

    path: str
    alias: str
    line: int = 0
    column: int = 0


@dataclass
class NestedBlocksAst:
    """An anonymous block disjunction member (Figs. 4.5/4.6)."""

    blocks: List["BlockAst"]
    line: int = 0
    column: int = 0


@dataclass
class BlockAst:
    """The body ``{ ... }`` of a graph declaration."""

    members: List[object] = field(default_factory=list)  # decl ASTs in order
    line: int = 0
    column: int = 0


@dataclass
class GraphDeclAst:
    """``graph [name] [<tuple>] { ... } (| { ... })* [where expr]``."""

    name: Optional[str]
    tuple: Optional[TupleAst]
    blocks: List[BlockAst]
    where: Optional[Expr] = None
    line: int = 0
    column: int = 0


@dataclass
class AssignAst:
    """``C := graph { ... };``"""

    name: str
    value: GraphDeclAst
    line: int = 0
    column: int = 0


@dataclass
class FLWRAst:
    """``for <id|pattern> [exhaustive] in doc("src") [where e]
    (return tmpl | let C := tmpl)``."""

    binding_name: Optional[str]  # for P ... (reference to a named pattern)
    pattern: Optional[GraphDeclAst]  # or an inline pattern
    exhaustive: bool
    source: str
    where: Optional[Expr]
    let_var: Optional[str]  # None => return mode
    template: GraphDeclAst
    line: int = 0
    column: int = 0


@dataclass
class ProgramAst:
    """A whole source file: a list of statements."""

    statements: List[object] = field(default_factory=list)
    line: int = 0
    column: int = 0
