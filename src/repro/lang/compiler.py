"""Lowering the syntactic AST to core objects.

Three compilation contexts share the same surface syntax:

* **data graphs** — constant structures with literal tuples (used by the
  storage layer and by ``C := graph {};`` assignments);
* **patterns** — graph declarations with constraints and ``where``
  predicates; named declarations are also registered as grammar motifs so
  later declarations (and recursive ones) can reference them;
* **templates** — graph declarations appearing in ``return``/``let``
  clauses, whose tuples carry *expressions* over parameters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.flwr import Assignment, FLWRQuery, ForClause, Program
from ..core.graph import Graph
from ..core.motif import (
    Disjunction,
    GraphGrammar,
    MotifBlock,
    MotifExpr,
    MotifRef,
)
from ..core.pattern import GraphPattern
from ..core.predicate import Expr, Literal
from ..core.template import GraphTemplate
from ..core.tuples import AttributeTuple
from .ast import (
    AssignAst,
    BlockAst,
    EdgeDeclAst,
    ExportAst,
    FLWRAst,
    GraphDeclAst,
    GraphMemberAst,
    NestedBlocksAst,
    NodeDeclAst,
    TupleAst,
    UnifyAst,
)
from .errors import GraphQLCompileError
from .parser import parse_graph_decl, parse_program


def _err(message: str, node: Any = None) -> GraphQLCompileError:
    """A compile error carrying the AST node's source position.

    *node* may be an AST dataclass (``line``/``column`` attributes), an
    expression (``pos`` tuple), or ``None`` for position-less errors.
    """
    line = column = 0
    if node is not None:
        pos = getattr(node, "pos", None)
        if pos:
            line, column = pos
        else:
            line = getattr(node, "line", 0)
            column = getattr(node, "column", 0)
    return GraphQLCompileError(message, line, column)


# --------------------------------------------------------------------------
# Data graphs
# --------------------------------------------------------------------------


def compile_graph(decl: GraphDeclAst, directed: bool = False) -> Graph:
    """Compile a constant graph declaration to a :class:`Graph`."""
    if len(decl.blocks) != 1:
        raise _err("a data graph cannot use disjunction", decl)
    if decl.where is not None:
        raise _err("a data graph cannot have a where clause", decl.where)
    graph = Graph(decl.name, _literal_tuple(decl.tuple), directed=directed)
    block = decl.blocks[0]
    for member in block.members:
        if isinstance(member, list) and member and isinstance(member[0], NodeDeclAst):
            for node_decl in member:
                if node_decl.where is not None:
                    raise _err("data nodes cannot have predicates", node_decl)
                attrs = _literal_tuple(node_decl.tuple)
                node = graph.add_node(node_decl.name, tag=attrs.tag)
                node.tuple = attrs
        elif isinstance(member, list) and member and isinstance(member[0], EdgeDeclAst):
            for edge_decl in member:
                if edge_decl.where is not None:
                    raise _err("data edges cannot have predicates", edge_decl)
                attrs = _literal_tuple(edge_decl.tuple)
                edge = graph.add_edge(
                    edge_decl.source, edge_decl.target, edge_id=edge_decl.name
                )
                edge.tuple = attrs
        else:
            raise _err(
                f"unsupported member in data graph: {type(member).__name__}",
                member[0] if isinstance(member, list) and member else member,
            )
    return graph


def _literal_tuple(tuple_ast: Optional[TupleAst]) -> AttributeTuple:
    if tuple_ast is None:
        return AttributeTuple()
    attrs: Dict[str, Any] = {}
    for name, expr in tuple_ast.entries:
        if not isinstance(expr, Literal):
            raise _err(
                f"attribute {name!r} must be a literal in this context",
                expr,
            )
        attrs[name] = expr.value
    return AttributeTuple(attrs, tag=tuple_ast.tag)


# --------------------------------------------------------------------------
# Patterns / motifs
# --------------------------------------------------------------------------


def compile_motif(decl: GraphDeclAst) -> MotifExpr:
    """Compile a graph declaration body to a motif expression."""
    blocks: List[MotifBlock] = []
    for block_ast in decl.blocks:
        compiled = _compile_block(block_ast)
        if isinstance(compiled, Disjunction):
            blocks.extend(compiled.alternatives)  # type: ignore[arg-type]
        else:
            blocks.append(compiled)
    if len(blocks) == 1:
        return blocks[0]
    return Disjunction(blocks)


def _compile_block(block_ast: BlockAst) -> MotifExpr:
    """Compile one block; anonymous nested disjunctions are *distributed*.

    ``{ A... {B1}|{B2} }`` (Fig. 4.5) means the block is either ``A+B1``
    or ``A+B2``, with one shared namespace — inner edges may reference
    outer nodes (``edge e2 (v1, v3)``) and vice versa.  Distribution makes
    that scoping exact.  Multiple anonymous members multiply out.
    """
    base = MotifBlock()
    alternative_sets: List[List[MotifBlock]] = []
    auto_node = 0
    for member in block_ast.members:
        if isinstance(member, list) and member and isinstance(member[0], NodeDeclAst):
            for node_decl in member:
                name = node_decl.name
                if name is None:
                    auto_node += 1
                    name = f"_v{auto_node}"
                tag, attrs = _constraint_tuple(node_decl.tuple)
                base.add_node(name, tag=tag, attrs=attrs, predicate=node_decl.where)
        elif isinstance(member, list) and member and isinstance(member[0], EdgeDeclAst):
            for edge_decl in member:
                tag, attrs = _constraint_tuple(edge_decl.tuple)
                base.add_edge(
                    edge_decl.source,
                    edge_decl.target,
                    name=edge_decl.name,
                    tag=tag,
                    attrs=attrs,
                    predicate=edge_decl.where,
                )
        elif isinstance(member, GraphMemberAst):
            for ref, alias in member.refs:
                base.add_member(MotifRef(ref), alias=alias or ref)
        elif isinstance(member, UnifyAst):
            if member.where is not None:
                raise _err(
                    "unify ... where is only allowed in templates", member
                )
            first = member.paths[0]
            for other in member.paths[1:]:
                base.unify(first, other)
        elif isinstance(member, ExportAst):
            base.export(member.path, member.alias)
        elif isinstance(member, NestedBlocksAst):
            alternatives: List[MotifBlock] = []
            for nested_ast in member.blocks:
                nested = _compile_block(nested_ast)
                if isinstance(nested, Disjunction):
                    alternatives.extend(nested.alternatives)  # type: ignore[arg-type]
                else:
                    alternatives.append(nested)
            alternative_sets.append(alternatives)
        else:
            raise _err(
                f"unsupported member {type(member).__name__}",
                member[0] if isinstance(member, list) and member else member,
            )
    if not alternative_sets:
        return base
    import itertools

    distributed: List[MotifBlock] = []
    for combination in itertools.product(*alternative_sets):
        merged = _merge_blocks([base, *combination])
        distributed.append(merged)
    if len(distributed) == 1:
        return distributed[0]
    return Disjunction(distributed)


def _merge_blocks(blocks: List[MotifBlock]) -> MotifBlock:
    """Concatenate block contents into one shared namespace."""
    merged = MotifBlock()
    used_edge_names: Set[str] = set()
    for block in blocks:
        for node in block.nodes:
            merged.add_node(node.name, tag=node.tag, attrs=node.attrs,
                            predicate=node.predicate)
        for edge in block.edges:
            name = edge.name
            while name in used_edge_names:
                name = name + "_"
            used_edge_names.add(name)
            merged.add_edge(edge.source, edge.target, name=name,
                            tag=edge.tag, attrs=edge.attrs,
                            predicate=edge.predicate)
        for alias, expr in block.members:
            merged.add_member(expr, alias=alias)
        for path_a, path_b in block.unifications:
            merged.unify(path_a, path_b)
        for inner, exposed in block.exports:
            merged.export(inner, exposed)
    return merged


def _constraint_tuple(
    tuple_ast: Optional[TupleAst],
) -> Tuple[Optional[str], Dict[str, Any]]:
    if tuple_ast is None:
        return None, {}
    attrs: Dict[str, Any] = {}
    for name, expr in tuple_ast.entries:
        if not isinstance(expr, Literal):
            raise _err(
                f"pattern attribute {name!r} must be a literal constraint",
                expr,
            )
        attrs[name] = expr.value
    return tuple_ast.tag, attrs


def compile_pattern(decl: GraphDeclAst) -> GraphPattern:
    """Compile a graph declaration to a :class:`GraphPattern`."""
    return GraphPattern(compile_motif(decl), where=decl.where, name=decl.name)


# --------------------------------------------------------------------------
# Anonymous-block scoping note: edges in Fig. 4.5 live *inside* the
# alternative blocks and reference the outer nodes v1/v2.  MotifBlock
# resolves edge end points within its own flattened namespace, so those
# references need the outer nodes visible inside each alternative.  The
# compiler handles this in _compile_block by exporting; references from
# inner blocks to outer nodes are resolved by *unification stubs*: the
# inner block declares a free node of the same name and the flattener
# unifies it with the outer node.
# --------------------------------------------------------------------------


# --------------------------------------------------------------------------
# Templates
# --------------------------------------------------------------------------


def compile_template(decl: GraphDeclAst) -> GraphTemplate:
    """Compile a ``return``/``let`` graph declaration to a template."""
    if len(decl.blocks) != 1:
        raise _err("templates cannot use disjunction", decl)
    if decl.where is not None:
        raise _err("templates cannot have a trailing where", decl.where)
    block = decl.blocks[0]
    attr_exprs: Dict[str, Expr] = {}
    tag = None
    if decl.tuple is not None:
        tag = decl.tuple.tag
        attr_exprs = dict(decl.tuple.entries)

    template = GraphTemplate([], name=decl.name, tag=tag, attr_exprs=attr_exprs)
    local_names: Set[str] = set()
    roots: Set[str] = set()

    def note_expr(expr: Optional[Expr]) -> None:
        if expr is not None:
            roots.update(expr.root_names())

    for member in block.members:
        if isinstance(member, GraphMemberAst):
            for ref, alias in member.refs:
                if alias is not None:
                    raise _err(
                        "template graph members cannot be aliased", member
                    )
                template.include_graph(ref)
                roots.add(ref)
        elif isinstance(member, list) and member and isinstance(member[0], NodeDeclAst):
            for node_decl in member:
                if node_decl.where is not None:
                    raise _err("template nodes cannot have where", node_decl)
                if node_decl.name and "." in node_decl.name and node_decl.tuple is None:
                    template.add_copied_node(node_decl.name)
                    roots.add(node_decl.name.split(".")[0])
                    local_names.add(node_decl.name)
                else:
                    if node_decl.name is None:
                        raise _err("template nodes must be named", node_decl)
                    entries = dict(node_decl.tuple.entries) if node_decl.tuple else {}
                    for expr in entries.values():
                        note_expr(expr)
                    template.add_node(
                        node_decl.name,
                        tag=node_decl.tuple.tag if node_decl.tuple else None,
                        attr_exprs=entries,
                    )
                    local_names.add(node_decl.name)
        elif isinstance(member, list) and member and isinstance(member[0], EdgeDeclAst):
            for edge_decl in member:
                if edge_decl.where is not None:
                    raise _err("template edges cannot have where", edge_decl)
                entries = dict(edge_decl.tuple.entries) if edge_decl.tuple else {}
                for expr in entries.values():
                    note_expr(expr)
                template.add_edge(
                    edge_decl.source,
                    edge_decl.target,
                    name=edge_decl.name,
                    tag=edge_decl.tuple.tag if edge_decl.tuple else None,
                    attr_exprs=entries,
                )
        elif isinstance(member, UnifyAst):
            note_expr(member.where)
            for path in member.paths:
                root = path.split(".")[0]
                if path not in local_names and root not in local_names:
                    roots.add(root)
            template.unify(*member.paths, where=member.where)
        else:
            raise _err(
                f"unsupported template member {type(member).__name__}",
                member[0] if isinstance(member, list) and member else member,
            )

    template.params = sorted(roots - local_names)
    return template


# --------------------------------------------------------------------------
# Programs
# --------------------------------------------------------------------------


class CompiledProgram:
    """The result of compiling a source file.

    Exposes the runnable :class:`~repro.core.flwr.Program`, the named
    patterns and the motif grammar (for recursive references).
    """

    def __init__(self) -> None:
        self.program = Program()
        self.patterns: Dict[str, GraphPattern] = {}
        self.grammar = GraphGrammar()
        self.program.grammar = self.grammar

    def run(self, database: Any, env: Optional[Dict[str, Any]] = None,
            context: Any = None) -> Dict[str, Any]:
        """Run the program against a document source.

        *context* optionally governs the run (deadline, budgets,
        cancellation); see :class:`repro.runtime.ExecutionContext`.
        """
        return self.program.run(database, env, context=context)


def _raise_on_analysis_errors(diagnostics: Any) -> None:
    """Turn the first error-severity diagnostic into a compile error."""
    from ..analysis.diagnostics import errors_only

    errors = errors_only(diagnostics)
    if errors:
        first = errors[0]
        span = first.span
        raise GraphQLCompileError(
            f"{first.code}: {first.message}",
            span.line if span else 0,
            span.column if span else 0,
        )


def compile_program(source: Any, check: bool = True) -> CompiledProgram:
    """Compile GraphQL source text (or a parsed AST) to a runnable program.

    With ``check`` (the default) the semantic analyzer runs first and any
    error-severity diagnostic — unbound variable, unsatisfiable template
    parameter, anonymous for-pattern — raises
    :class:`GraphQLCompileError` before lowering begins.  Warnings and
    hints never block compilation; ``repro-gql check`` surfaces those.
    """
    ast = parse_program(source) if isinstance(source, str) else source
    if check:
        from ..analysis.analyzer import analyze_program

        _raise_on_analysis_errors(analyze_program(ast))
    compiled = CompiledProgram()
    for statement in ast.statements:
        if isinstance(statement, GraphDeclAst):
            pattern = compile_pattern(statement)
            if statement.name:
                compiled.patterns[statement.name] = pattern
                compiled.grammar.define(statement.name, pattern.motif)
        elif isinstance(statement, AssignAst):
            graph = compile_graph(statement.value)
            graph.name = statement.name
            compiled.program.add(Assignment(statement.name, graph))
        elif isinstance(statement, FLWRAst):
            compiled.program.add(_compile_flwr(statement, compiled))
        else:
            raise _err(
                f"unsupported statement {type(statement).__name__}", statement
            )
    return compiled


def _compile_flwr(ast: FLWRAst, compiled: CompiledProgram) -> FLWRQuery:
    if ast.pattern is not None:
        pattern = compile_pattern(ast.pattern)
        if pattern.name:
            compiled.patterns[pattern.name] = pattern
            compiled.grammar.define(pattern.name, pattern.motif)
        clause = ForClause(
            ast.source,
            pattern=pattern,
            exhaustive=ast.exhaustive,
            where=ast.where,
        )
    else:
        name = ast.binding_name
        assert name is not None
        if name in compiled.patterns:
            clause = ForClause(
                ast.source,
                pattern=compiled.patterns[name],
                exhaustive=ast.exhaustive,
                where=ast.where,
            )
        else:
            clause = ForClause(
                ast.source,
                var=name,
                exhaustive=ast.exhaustive,
                where=ast.where,
            )
    template = compile_template(ast.template)
    return FLWRQuery(clause, template, let_var=ast.let_var)


def compile_graph_text(text: str, directed: bool = False) -> Graph:
    """Parse and compile one constant graph declaration."""
    return compile_graph(parse_graph_decl(text), directed=directed)


def compile_pattern_text(text: str, check: bool = True) -> GraphPattern:
    """Parse and compile one graph pattern declaration.

    With ``check`` (the default) error-severity analyzer findings raise
    :class:`GraphQLCompileError` before compilation, mirroring
    :func:`compile_program`.
    """
    decl = parse_graph_decl(text)
    if check:
        from ..analysis.analyzer import analyze_pattern

        _raise_on_analysis_errors(analyze_pattern(decl))
    return compile_pattern(decl)
