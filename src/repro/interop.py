"""Interoperability with networkx.

Real deployments rarely start from scratch: this module converts between
:class:`repro.core.graph.Graph` and ``networkx`` graphs so existing
pipelines can feed data into GraphQL queries (and take results back).

Node attributes map to tuple attributes; the reserved key ``__tag__``
carries the tuple tag in the networkx direction.
"""

from __future__ import annotations

from typing import Any, Optional

from .core.graph import Graph
from .core.tuples import AttributeTuple

_TAG_KEY = "__tag__"


def to_networkx(graph: Graph):
    """Convert to ``networkx.Graph`` / ``DiGraph`` (attributes copied)."""
    import networkx as nx

    out = nx.DiGraph() if graph.directed else nx.Graph()
    out.graph.update(graph.tuple.as_dict())
    if graph.tuple.tag is not None:
        out.graph[_TAG_KEY] = graph.tuple.tag
    if graph.name is not None:
        out.graph.setdefault("name", graph.name)
    for node in graph.nodes():
        attrs = node.tuple.as_dict()
        if node.tag is not None:
            attrs[_TAG_KEY] = node.tag
        out.add_node(node.id, **attrs)
    for edge in graph.edges():
        attrs = edge.tuple.as_dict()
        if edge.tag is not None:
            attrs[_TAG_KEY] = edge.tag
        out.add_edge(edge.source, edge.target, **attrs)
    return out


def from_networkx(nx_graph, name: Optional[str] = None) -> Graph:
    """Convert from any networkx graph (nodes coerced to string ids).

    Multigraphs collapse parallel edges (the data model stores one edge
    per pair); non-scalar attribute values are skipped with their keys.
    """
    import networkx as nx

    directed = nx_graph.is_directed()
    graph_attrs = {
        k: v for k, v in nx_graph.graph.items()
        if k not in ("name", _TAG_KEY) and _is_scalar(v)
    }
    graph = Graph(
        name if name is not None else nx_graph.graph.get("name"),
        AttributeTuple(graph_attrs, tag=nx_graph.graph.get(_TAG_KEY)),
        directed=directed,
    )
    for node, data in nx_graph.nodes(data=True):
        attrs = {k: v for k, v in data.items()
                 if k != _TAG_KEY and _is_scalar(v)}
        new = graph.add_node(str(node), tag=data.get(_TAG_KEY))
        new.tuple.update(attrs)
    for source, target, data in nx_graph.edges(data=True):
        source_id, target_id = str(source), str(target)
        if graph.has_edge(source_id, target_id) and not directed:
            continue  # collapse multi-edges
        if directed and graph.edge_between(source_id, target_id) is not None:
            existing = graph.edge_between(source_id, target_id)
            if existing.source == source_id:
                continue
        attrs = {k: v for k, v in data.items()
                 if k != _TAG_KEY and _is_scalar(v)}
        edge = graph.add_edge(source_id, target_id, tag=data.get(_TAG_KEY))
        edge.tuple.update(attrs)
    return graph


def _is_scalar(value: Any) -> bool:
    return isinstance(value, (int, float, str, bool))
