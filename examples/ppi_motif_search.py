"""Motif search over a protein-interaction network (Section 5.1 workload).

Searches a yeast-scale PPI network for protein-complex motifs (labeled
cliques), comparing the paper's access-method configurations:

* Baseline  — feasible mates by label only, naive search order;
* Optimized — profile pruning + pseudo-subgraph-isomorphism refinement +
  cost-based search order.

Run with:  python examples/ppi_motif_search.py
"""

import random
import time

from repro.datasets import ppi_network
from repro.datasets.queries import seeded_clique_query
from repro.matching import GraphMatcher, baseline_options, optimized_options


def main() -> None:
    print("generating yeast-scale PPI network (3112 proteins, "
          "12519 interactions) ...")
    network = ppi_network()
    started = time.perf_counter()
    matcher = GraphMatcher(network)
    print(f"indexes + statistics built in "
          f"{(time.perf_counter() - started) * 1000:.0f} ms\n")

    rng = random.Random(2024)
    print(f"{'size':>4} {'hits':>5} {'baseline':>12} {'optimized':>12} "
          f"{'space reduction':>16}")
    for size in (3, 4, 5, 6):
        query = seeded_clique_query(network, size, rng)
        if query is None:
            print(f"{size:>4}  (no clique of this size found)")
            continue
        base = matcher.match(query, baseline_options(limit=1000))
        opt = matcher.match(query, optimized_options(limit=1000))
        assert len(base.mappings) == len(opt.mappings)
        print(f"{size:>4} {len(opt.mappings):>5} "
              f"{base.total_time * 1000:>10.1f}ms "
              f"{opt.total_time * 1000:>10.1f}ms "
              f"{opt.reduction_ratio():>15.2e}")

    # inspect one match in detail
    query = seeded_clique_query(network, 4, rng)
    if query is not None:
        report = matcher.match(query, optimized_options(limit=5))
        print("\nexample complex instances (size-4 clique):")
        for mapping in report.mappings[:3]:
            proteins = [network.node(v)["protein"]
                        for v in mapping.nodes.values()]
            print("  " + ", ".join(sorted(proteins)))


if __name__ == "__main__":
    main()
