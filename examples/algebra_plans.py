"""Algebraic plans and rewrite laws: optimizing a join query.

Builds σ(C × D) as a plan tree, lets the optimizer push the single-side
selection conjuncts below the product (the classic relational law the
paper says carries over to the graph algebra), and shows the before/after
plans and the work saved.

Run with:  python examples/algebra_plans.py
"""

from repro.core import DictSource, Graph, GraphCollection
from repro.core.plans import Doc, Filter, Product, optimize
from repro.core.predicate import AttrRef, BinOp, Literal


def ref(path):
    return AttrRef(tuple(path.split(".")))


def dept(name, company, budget):
    g = Graph(name)
    g.tuple.set("company", company)
    g.tuple.set("budget", budget)
    g.add_node("d", tag="department")
    return g


def project(name, company, cost):
    g = Graph(name)
    g.tuple.set("company", company)
    g.tuple.set("cost", cost)
    g.add_node("p", tag="project")
    return g


def main() -> None:
    departments = GraphCollection([
        dept(f"dept{i}", "Acme" if i % 2 else "Globex", 100 + 10 * i)
        for i in range(20)
    ])
    projects = GraphCollection([
        project(f"proj{i}", "Acme" if i % 3 else "Globex", 50 + 5 * i)
        for i in range(20)
    ])
    source = DictSource({"departments": departments, "projects": projects})

    predicate = BinOp(
        "&",
        BinOp("==", ref("G1.company"), ref("G2.company")),
        BinOp(
            "&",
            BinOp(">", ref("G1.budget"), Literal(150)),
            BinOp("<", ref("G2.cost"), Literal(100)),
        ),
    )
    naive = Filter(Product(Doc("departments"), Doc("projects")), predicate)
    optimized = optimize(naive)

    print("naive plan:")
    print(naive.describe(1))
    print("\noptimized plan (selections pushed below the product):")
    print(optimized.describe(1))

    before = naive.evaluate(source)
    after = optimized.evaluate(source)
    assert len(before) == len(after)
    print(f"\nboth plans return {len(after)} joined pairs")

    # the optimized product is much smaller
    naive_product = Product(Doc("departments"), Doc("projects")).evaluate(source)
    optimized_product = optimized if not isinstance(optimized, Filter) \
        else optimized.child
    print(f"naive product size: {len(naive_product)}; "
          f"optimized product size: "
          f"{len(optimized_product.evaluate(source))}")


if __name__ == "__main__":
    main()
