"""Chemical-compound search: the paper's first motivating example.

*"Find all heterocyclic chemical compounds that contain a given aromatic
ring and a side chain"* — runs over a collection of small compound
graphs, first by scanning, then through the GraphGrep-style path index
(filter + verify), showing why graph indexing is the B-tree of graph
databases for this workload.

Run with:  python examples/chemical_search.py
"""

import time

from repro.core import select
from repro.datasets import (
    benzene_ring_pattern,
    molecule_collection,
    ring_with_side_chain_pattern,
)
from repro.index import PathIndex, PathIndexStats


def main() -> None:
    collection = molecule_collection(num_molecules=400, seed=7)
    print(f"compound collection: {len(collection)} molecules")

    started = time.perf_counter()
    index = PathIndex(collection, max_length=3)
    print(f"path index built in {(time.perf_counter() - started) * 1000:.0f} ms "
          f"({index!r})\n")

    for pattern, description in [
        (ring_with_side_chain_pattern("O"),
         "aromatic C-C ring bond with an oxygen side chain"),
        (ring_with_side_chain_pattern("S"),
         "aromatic C-C ring bond with a sulfur side chain"),
        (benzene_ring_pattern(),
         "full six-carbon aromatic ring"),
    ]:
        started = time.perf_counter()
        scanned = select(collection, pattern, exhaustive=False)
        scan_ms = (time.perf_counter() - started) * 1000

        stats = PathIndexStats()
        started = time.perf_counter()
        filtered = index.select(pattern, exhaustive=False, stats=stats)
        indexed_ms = (time.perf_counter() - started) * 1000

        assert len(filtered) == len(scanned)
        print(f"{description}:")
        print(f"  {len(filtered)} compounds match; "
              f"filter kept {stats.candidates}/{stats.collection_size} "
              f"({stats.filter_ratio:.0%})")
        print(f"  full scan {scan_ms:.1f} ms -> filter+verify "
              f"{indexed_ms:.1f} ms\n")


if __name__ == "__main__":
    main()
