"""Quickstart: build a graph, write a GraphQL query, match a pattern.

Run with:  python examples/quickstart.py
"""

from repro import GraphDatabase, GraphMatcher, optimized_options
from repro.core import Graph
from repro.lang import compile_pattern_text


def main() -> None:
    # -- 1. build an attributed graph (the paper's Fig. 4.16 example) -------
    graph = Graph("G")
    for node_id, label in [("A1", "A"), ("A2", "A"), ("B1", "B"),
                           ("B2", "B"), ("C1", "C"), ("C2", "C")]:
        graph.add_node(node_id, label=label)
    for source, target in [("A1", "B1"), ("A1", "C2"), ("B1", "C1"),
                           ("B1", "C2"), ("B2", "C2"), ("A2", "B2")]:
        graph.add_edge(source, target)
    print(f"data graph: {graph}")

    # -- 2. write a graph pattern in GraphQL syntax --------------------------
    pattern = compile_pattern_text("""
        graph P {
            node u1 <label="A">;
            node u2 <label="B">;
            node u3 <label="C">;
            edge e1 (u1, u2);
            edge e2 (u2, u3);
            edge e3 (u3, u1);
        }
    """)

    # -- 3. match with the paper's optimized access methods -----------------
    matcher = GraphMatcher(graph)
    report = matcher.match_pattern(pattern, optimized_options())
    print(f"search space: {report.baseline_space} -> "
          f"{report.retrieved_space} (profiles) -> "
          f"{report.refined_space} (refined)")
    for mapping in report.mappings:
        print(f"  match: {mapping}")

    # -- 4. run a whole FLWR query through the database facade ---------------
    db = GraphDatabase()
    db.register("net", graph)
    env = db.query("""
        graph Q { node a <label="A">; node b <label="B">; edge e (a, b); };
        for Q exhaustive in doc("net")
        return graph { node n <left=Q.a.label, right=Q.b.label>; };
    """)
    print(f"FLWR result: {len(env['__result__'])} graphs returned")


if __name__ == "__main__":
    main()
