"""The paper's running DBLP example (Figs. 4.12 / 4.13).

Builds a co-authorship graph from a collection of papers with a single
FLWR query: every pair of authors on a SIGMOD paper becomes an edge, and
``unify ... where`` deduplicates authors across papers.

Run with:  python examples/coauthorship.py
"""

from repro import GraphDatabase
from repro.datasets import dblp_collection, tiny_dblp

COAUTHOR_QUERY = """
graph P {
  node v1 <author>;
  node v2 <author>;
} where P.booktitle="SIGMOD";

C := graph {};

for P exhaustive in doc("DBLP")
let C := graph {
  graph C;
  node P.v1, P.v2;
  edge e1 (P.v1, P.v2);
  unify P.v1, C.v1 where P.v1.name=C.v1.name;
  unify P.v2, C.v2 where P.v2.name=C.v2.name;
}
"""


def run(collection, title: str) -> None:
    db = GraphDatabase()
    db.register("DBLP", collection)
    env = db.query(COAUTHOR_QUERY)
    coauthors = env["C"]
    print(f"== {title} ==")
    print(f"papers: {len(collection)}; "
          f"authors in co-authorship graph: {coauthors.num_nodes()}; "
          f"co-author edges: {coauthors.num_edges()}")
    # top collaborators by degree
    by_degree = sorted(
        ((coauthors.degree(n.id), n["name"]) for n in coauthors.nodes()),
        reverse=True,
    )
    for degree, name in by_degree[:5]:
        print(f"  {name}: {degree} co-authors")
    print()


def main() -> None:
    # the exact two-paper collection of Fig. 4.13 ...
    run(tiny_dblp(), "Fig. 4.13 miniature (expect 4 authors, 4 edges)")
    # ... and a synthetic DBLP-scale collection
    run(dblp_collection(num_papers=300, num_authors=100, seed=11),
        "synthetic DBLP (300 papers)")


if __name__ == "__main__":
    main()
