"""Social-network analytics: patterns + aggregation + ranking.

The paper's intro lists social networks among the graph-native domains.
This example builds a directed follower network, finds structural
patterns (reciprocal pairs, "broker" wedges), and runs the aggregation
and ranking operators over the matches — graphs stay the unit of
information end to end.

Run with:  python examples/social_network.py
"""

import random

from repro.core import Graph, GraphCollection, GroundPattern
from repro.core.aggregate import aggregate, order_by, top_k
from repro.core.motif import SimpleMotif
from repro.core.predicate import AttrRef
from repro.matching import GraphMatcher, optimized_options


def ref(path):
    return AttrRef(tuple(path.split(".")))


def build_network(num_users: int = 300, seed: int = 9) -> Graph:
    rng = random.Random(seed)
    graph = Graph("follows", directed=True)
    cities = ["tokyo", "berlin", "lagos", "lima", "oslo"]
    for i in range(num_users):
        graph.add_node(
            f"u{i}",
            tag="user",
            label="user",
            handle=f"@user{i}",
            city=rng.choice(cities),
            karma=rng.randint(0, 1000),
        )
    ids = graph.node_ids()
    # preferential attachment on the follow direction creates celebrities
    targets = list(ids[:10])
    for _ in range(num_users * 6):
        source = ids[rng.randrange(num_users)]
        target = (targets[rng.randrange(len(targets))]
                  if rng.random() < 0.6 else ids[rng.randrange(num_users)])
        if source != target and not graph.has_edge(source, target):
            graph.add_edge(source, target, kind="follows")
            targets.append(target)
    return graph


def reciprocal_pattern() -> GroundPattern:
    motif = SimpleMotif()
    motif.add_node("a", tag="user")
    motif.add_node("b", tag="user")
    motif.add_edge("a", "b")
    motif.add_edge("b", "a")
    return GroundPattern(motif, name="mutual")


def broker_pattern() -> GroundPattern:
    """a follows m, m follows b, but a does not know b directly —
    approximated structurally as the open wedge a -> m -> b."""
    motif = SimpleMotif()
    motif.add_node("a", tag="user")
    motif.add_node("m", tag="user")
    motif.add_node("b", tag="user")
    motif.add_edge("a", "m")
    motif.add_edge("m", "b")
    return GroundPattern(motif, name="wedge")


def main() -> None:
    network = build_network()
    print(f"network: {network}")
    matcher = GraphMatcher(network)

    mutual = matcher.match(reciprocal_pattern(),
                           optimized_options(limit=5000))
    pairs = {frozenset(m.nodes.values()) for m in mutual.mappings}
    print(f"reciprocal follow pairs: {len(pairs)}")

    wedges = matcher.match(broker_pattern(), optimized_options(limit=5000))
    print(f"open wedges (a->m->b): {len(wedges.mappings)}")

    # aggregation: which city's users broker the most wedges?
    from repro.core.bindings import MatchedGraph

    matched = GraphCollection(
        [MatchedGraph(m, broker_pattern(), network)
         for m in wedges.mappings]
    )
    per_city = aggregate(
        matched,
        [("wedges", "count", None)],
        key=ref("m.city"),
        key_name="city",
    )
    ranked = order_by(per_city, [(ref("wedges"), True)])
    print("\nwedges brokered per city:")
    for summary in ranked:
        node = summary.node("r")
        print(f"  {node['city']:>8}: {node['wedges']}")

    # ranking: most-followed users via the one-edge pattern
    follow = SimpleMotif()
    follow.add_node("src", tag="user")
    follow.add_node("dst", tag="user")
    follow.add_edge("src", "dst")
    report = matcher.match(GroundPattern(follow, name="F"),
                           optimized_options(limit=10000))
    followed = GraphCollection(
        [MatchedGraph(m, GroundPattern(follow, name="F"), network)
         for m in report.mappings]
    )
    per_user = aggregate(followed, [("followers", "count", None)],
                         key=ref("dst.handle"), key_name="handle")
    print("\ntop celebrities:")
    for summary in top_k(per_user, ref("followers"), 5):
        node = summary.node("r")
        print(f"  {node['handle']:>10}: {node['followers']} followers")


if __name__ == "__main__":
    main()
