"""The intro's RDF example: departments sharing a shipping company.

*"Find all instances from an RDF graph where two departments of a company
share the same shipping company ... Report the result as a single graph
with departments as nodes and edges between nodes that share a shipper."*

This exercises the full pipeline: a graph-structural pattern with a
cross-node value constraint, plus a ``let``-accumulated result graph.

Run with:  python examples/rdf_shipping.py
"""

from repro import GraphDatabase
from repro.core import Graph


def build_rdf_graph() -> Graph:
    g = Graph("rdf", directed=True)
    companies = {"Acme": 3, "Globex": 2, "Initech": 2}
    shippers = ["FastShip", "SlowBoat", "DroneX"]
    for shipper in shippers:
        g.add_node(shipper, tag="shipper", name=shipper)
    index = 0
    assignments = {
        # department -> shipper (Acme's d0/d1 share FastShip;
        # Globex's d3/d4 share SlowBoat; Initech's differ)
        0: "FastShip", 1: "FastShip", 2: "DroneX",
        3: "SlowBoat", 4: "SlowBoat",
        5: "FastShip", 6: "DroneX",
    }
    for company, count in companies.items():
        for _ in range(count):
            dept = g.add_node(f"d{index}", tag="department",
                              company=company, dept_id=index)
            g.add_edge(dept.id, assignments[index], kind="shipping")
            index += 1
    return g


QUERY = """
graph P {
  node u1 <department>;
  node u2 <department>;
  node s <shipper>;
  edge e1 (u1, s) where kind="shipping";
  edge e2 (u2, s) where kind="shipping";
} where u1.company = u2.company & u1.dept_id < u2.dept_id;

R := graph {};

for P exhaustive in doc("rdf")
let R := graph {
  graph R;
  node P.u1, P.u2;
  edge shared (P.u1, P.u2);
  unify P.u1, R.x where P.u1.dept_id = R.x.dept_id;
  unify P.u2, R.y where P.u2.dept_id = R.y.dept_id;
}
"""


def main() -> None:
    db = GraphDatabase()
    db.register("rdf", build_rdf_graph())
    env = db.query(QUERY)
    result = env["R"]
    print("departments that share a shipper with a sibling department:")
    for edge in result.edges():
        a = result.node(edge.source)
        b = result.node(edge.target)
        print(f"  {a['company']}: dept {a['dept_id']} <-> dept {b['dept_id']}")
    assert result.num_edges() == 2  # Acme d0-d1 and Globex d3-d4


if __name__ == "__main__":
    main()
