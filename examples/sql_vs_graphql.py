"""Side-by-side: graph-native matching vs the SQL-based implementation.

Reproduces the architectural comparison of Sections 1.2 and 5 in
miniature: the same pattern runs through (a) the optimized graph matcher
and (b) translation to the Fig. 4.2 multi-join SQL query over V/E tables.
Both return the same mappings; the SQL plan examines orders of magnitude
more rows because it cannot prune with graph structure.

Run with:  python examples/sql_vs_graphql.py
"""

import random
import time

from repro.datasets import erdos_renyi_graph
from repro.datasets.queries import extract_connected_query
from repro.matching import GraphMatcher, optimized_options
from repro.sqlbaseline import ExecutionStats, SQLGraphMatcher, WorkBudgetExceeded


def main() -> None:
    graph = erdos_renyi_graph(2000, 10000, num_labels=100, seed=17)
    print(f"data graph: {graph}\n")
    matcher = GraphMatcher(graph)
    sql_matcher = SQLGraphMatcher(graph, join_order="greedy")
    rng = random.Random(4)

    print(f"{'query size':>10} {'hits':>6} {'graphql':>12} {'sql':>12} "
          f"{'sql rows examined':>18}")
    for size in (3, 4, 5, 6):
        query = extract_connected_query(graph, size, rng)
        print_sql = sql_matcher.sql_for(query)
        report = matcher.match(query, optimized_options(limit=1000))

        stats = ExecutionStats()
        started = time.perf_counter()
        try:
            sql_mappings = sql_matcher.match(query, limit=1000, stats=stats,
                                             max_rows_examined=5_000_000)
            sql_time = time.perf_counter() - started
            agree = len(sql_mappings) == len(report.mappings)
            sql_cell = f"{sql_time * 1000:>10.1f}ms"
            assert agree, "SQL and graph matcher disagree!"
        except WorkBudgetExceeded:
            sql_cell = "   (aborted)"
        print(f"{size:>10} {len(report.mappings):>6} "
              f"{report.total_time * 1000:>10.1f}ms {sql_cell} "
              f"{stats.rows_examined:>18,}")

    print("\nthe SQL text for the last query (Fig. 4.2 shape):")
    print("  " + print_sql[:200] + (" ..." if len(print_sql) > 200 else ""))


if __name__ == "__main__":
    main()
