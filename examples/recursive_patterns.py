"""Recursive graph patterns: paths, cycles and repetition (Section 2.3).

Defines the ``Path`` grammar of Fig. 4.6 in GraphQL syntax, derives its
ground motifs, and matches them against a small road network — the
documented extension for recursive pattern matching (the paper's access
methods target nonrecursive patterns; recursive ones match by unioning
bounded derivations).

Run with:  python examples/recursive_patterns.py
"""

from repro.core import Graph
from repro.lang import compile_program
from repro.matching import GraphMatcher, optimized_options

PATH_GRAMMAR = """
graph Path { graph Path; node v1; edge e1 (v1, Path.v1);
             export Path.v2 as v2; export v1 as v1; }
           | { node v1, v2; edge e1 (v1, v2);
               export v1 as v1; export v2 as v2; };
"""


def build_road_network() -> Graph:
    g = Graph("roads")
    cities = ["springfield", "shelbyville", "ogdenville",
              "north_haverbrook", "capital_city"]
    for city in cities:
        g.add_node(city, label="city")
    for a, b in [("springfield", "shelbyville"),
                 ("shelbyville", "ogdenville"),
                 ("ogdenville", "north_haverbrook"),
                 ("north_haverbrook", "capital_city"),
                 ("springfield", "capital_city")]:
        g.add_edge(a, b)
    return g


def main() -> None:
    compiled = compile_program(PATH_GRAMMAR)
    pattern = compiled.patterns["Path"]
    print(f"pattern is recursive: {pattern.is_recursive()}")

    graph = build_road_network()
    matcher = GraphMatcher(graph)
    print(f"road network: {graph}\n")

    for depth in (2, 3, 4):
        grounds = pattern.ground(compiled.grammar, max_depth=depth)
        total = 0
        for ground in grounds:
            report = matcher.match(ground, optimized_options())
            total += len(report.mappings)
        shapes = sorted(g.num_nodes() for g in grounds)
        print(f"derivation depth {depth}: path lengths {shapes} "
              f"-> {total} path instances")


if __name__ == "__main__":
    main()
