"""Approximate the repo's ruff selection (E4/E7/E9, F) with stdlib ast.

CI runs the real thing (`ruff check src tests benchmarks`, configured in
pyproject.toml).  This script exists for offline environments where ruff
cannot be installed: `python tools/lint_approx.py [paths...]` exits
non-zero on findings.  It intentionally under-approximates — anything it
reports, ruff reports too.

Checks implemented:
  F401  module-level import never used (skips __init__.py, __all__ names,
        and names re-exported via "from x import y as y")
  F841  local variable assigned once and never read (simple Name targets
        only; skips _-prefixed names, augmented assigns, and closures)
  E711  comparison to None with ==/!=
  E712  comparison to True/False with ==/!=
  F632  `is` / `is not` against a str/int/tuple literal
  F541  f-string without any placeholder
  E722  bare except
"""
import ast
import sys
from pathlib import Path


def names_loaded(tree):
    loaded = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loaded.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                loaded.add(base.id)
    # names referenced in __all__ or in string annotations count as used
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id == "__all__":
                    for elt in ast.walk(node.value):
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            loaded.add(elt.value)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # crude: string annotations / doctest references
            pass
    return loaded


def check_file(path):
    findings = []
    src = path.read_text()
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError as exc:  # E9
        findings.append((exc.lineno or 0, "E999", f"syntax error: {exc.msg}"))
        return findings
    loaded = names_loaded(tree)

    is_init = path.name == "__init__.py"
    spec_ids = {
        id(n.format_spec)
        for n in ast.walk(tree)
        if isinstance(n, ast.FormattedValue) and n.format_spec is not None
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and not is_init:
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:  # explicit re-export idiom
                    continue
                if name not in loaded:
                    findings.append((node.lineno, "F401", f"unused import: {name}"))
        elif isinstance(node, ast.Compare):
            for op, comp in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and isinstance(comp, ast.Constant):
                    if comp.value is None:
                        findings.append((node.lineno, "E711", "comparison to None with ==/!="))
                    elif comp.value is True or comp.value is False:
                        findings.append((node.lineno, "E712", "comparison to True/False with ==/!="))
                if isinstance(op, (ast.Is, ast.IsNot)) and isinstance(comp, ast.Constant):
                    if isinstance(comp.value, (str, int, tuple)) and not isinstance(comp.value, bool):
                        findings.append((node.lineno, "F632", "`is` with a literal"))
        elif isinstance(node, ast.JoinedStr) and id(node) not in spec_ids:
            if not any(isinstance(v, ast.FormattedValue) for v in node.values):
                findings.append((node.lineno, "F541", "f-string without placeholders"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append((node.lineno, "E722", "bare except"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(check_locals(node))
    return findings


def check_locals(func):
    # skip functions that contain nested defs/lambdas (closure reads)
    for node in ast.walk(func):
        if node is not func and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return []
    assigned = {}
    read = set()
    for node in ast.walk(func):
        # ruff's F841 only flags plain single-name assignments — loop
        # variables, with-targets and tuple unpacking are exempt
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                assigned.setdefault(node.targets[0].id, node.lineno)
        if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
            read.add(node.id)
        elif isinstance(node, (ast.AugAssign,)):
            if isinstance(node.target, ast.Name):
                read.add(node.target.id)
    out = []
    for name, lineno in sorted(assigned.items(), key=lambda kv: kv[1]):
        if name.startswith("_") or name in read:
            continue
        out.append((lineno, "F841", f"unused local: {name} (in {func.name})"))
    return out


def main():
    roots = [Path(a) for a in (sys.argv[1:] or ["src", "tests", "benchmarks"])]
    total = 0
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            for lineno, code, msg in check_file(path):
                print(f"{path}:{lineno}: {code} {msg}")
                total += 1
    print(f"-- {total} finding(s)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
