"""Lock-discipline lint: no blocking calls while holding a lock.

The service and cluster layers hold ``threading.Lock``s only for short
bookkeeping sections; a blocking call inside ``with self._lock:`` turns
every other thread's microsecond critical section into seconds of
convoy (and, for the pool watchdog, a missed deadline).  This script
walks the stdlib ast of the given files and flags calls that can block
indefinitely while a lock-like context manager is held:

  C001  time.sleep(...) under a lock
  C002  Future/queue/thread synchronization under a lock:
        .result() / .join() / .wait() / .acquire() / .get() with no
        timeout argument (a bounded wait is loud in the code and allowed)
  C003  socket/subprocess I/O under a lock: .recv/.recvfrom/.accept/
        .connect/.sendall/.makefile, subprocess run/call/check_output/
        communicate/Popen.wait
  C004  a nested ``with <lock>:`` under a lock (ordering hazard; one
        order inverted elsewhere deadlocks)

A context manager counts as lock-like when the expression's last name
segment contains ``lock`` or ``mutex`` (case-insensitive):
``self._lock``, ``self._counter_lock``, ``registry.lock()``.  tracer
spans, files and pools do not match, keeping the lint quiet on the
overwhelmingly common safe ``with`` uses.

Reviewed exceptions are waived line-by-line with a trailing comment::

    with self._lock:
        probe.wait()  # lint: allow-blocking-under-lock — <why it is safe>

Run: ``python tools/lint_concurrency.py [paths...]`` (defaults to
``src/repro/service src/repro/cluster``); exits non-zero on findings.
CI runs it in the lint job next to ruff.
"""
import ast
import sys
from pathlib import Path

WAIVER = "lint: allow-blocking-under-lock"

#: method names that block until an event with no inherent bound;
#: flagged only when called without a timeout argument (C002)
_SYNC_METHODS = {"result", "join", "wait", "acquire", "get"}

#: method/function names that do network or process I/O (C003)
_IO_METHODS = {"recv", "recvfrom", "recv_into", "accept", "connect",
               "sendall", "makefile", "communicate", "check_output",
               "check_call", "call", "run"}

#: subprocess module-level callables (C003 when called as subprocess.X)
_SUBPROCESS_FUNCS = {"run", "call", "check_call", "check_output", "Popen"}


def _last_segment(expr):
    """The final attribute/name segment of a dotted expression, or ''."""
    if isinstance(expr, ast.Call):
        return _last_segment(expr.func)
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def _is_lock_like(expr):
    """Whether a with-item expression looks like a mutex guard."""
    name = _last_segment(expr).lower()
    return "lock" in name or "mutex" in name


def _root_name(expr):
    """The leading name of a dotted expression (``time`` in
    ``time.sleep``), or ''."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else ""


def _has_timeout(call):
    """Whether the call passes any argument at all (positional timeout)
    or an explicit ``timeout=``/``block=`` keyword."""
    if call.args:
        return True
    return any(kw.arg in ("timeout", "block") for kw in call.keywords)


def _classify_call(call):
    """(code, message) when *call* can block unboundedly, else None."""
    func = call.func
    if not isinstance(func, (ast.Attribute, ast.Name)):
        return None
    name = func.attr if isinstance(func, ast.Attribute) else func.id
    root = _root_name(func) if isinstance(func, ast.Attribute) else ""
    if name == "sleep" and root == "time":
        return ("C001", "time.sleep under a lock")
    if root == "subprocess" and name in _SUBPROCESS_FUNCS:
        return ("C003", f"subprocess.{name} under a lock")
    if isinstance(func, ast.Attribute):
        if name in _IO_METHODS:
            return ("C003", f".{name}() I/O under a lock")
        if name in _SYNC_METHODS and not _has_timeout(call):
            return ("C002",
                    f".{name}() with no timeout under a lock")
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, waived_lines):
        self.waived = waived_lines
        self.lock_depth = 0
        self.findings = []

    def _emit(self, lineno, code, message):
        if lineno not in self.waived:
            self.findings.append((lineno, code, message))

    def visit_With(self, node):
        holds = any(_is_lock_like(item.context_expr)
                    for item in node.items)
        if holds and self.lock_depth:
            self._emit(node.lineno, "C004",
                       "nested lock acquisition under a lock "
                       "(ordering hazard)")
        self.lock_depth += int(holds)
        self.generic_visit(node)
        self.lock_depth -= int(holds)

    visit_AsyncWith = visit_With

    def visit_Call(self, node):
        if self.lock_depth:
            hit = _classify_call(node)
            if hit is not None:
                self._emit(node.lineno, *hit)
        self.generic_visit(node)

    # a nested function defined under a lock runs later, not under it
    def _skip_nested(self, node):
        if self.lock_depth:
            saved, self.lock_depth = self.lock_depth, 0
            self.generic_visit(node)
            self.lock_depth = saved
        else:
            self.generic_visit(node)

    visit_FunctionDef = _skip_nested
    visit_AsyncFunctionDef = _skip_nested
    visit_Lambda = _skip_nested


def check_source(src, filename="<source>"):
    """All findings for one source text: ``[(lineno, code, message)]``."""
    tree = ast.parse(src, filename=filename)
    waived = {
        index
        for index, line in enumerate(src.splitlines(), start=1)
        if WAIVER in line
    }
    visitor = _Visitor(waived)
    visitor.visit(tree)
    return sorted(visitor.findings)


def check_file(path):
    return check_source(path.read_text(), filename=str(path))


def main():
    roots = [Path(a) for a in (sys.argv[1:]
                               or ["src/repro/service", "src/repro/cluster"])]
    total = 0
    for root in roots:
        paths = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in paths:
            for lineno, code, msg in check_file(path):
                print(f"{path}:{lineno}: {code} {msg}")
                total += 1
    print(f"-- {total} finding(s)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
